"""Unit tests for VRF (virtual routing table) support."""

import pytest

from repro.algorithms import Bsic, LogicalTcam, VrfRouter, tag_prefix
from repro.chip import map_to_ideal_rmt
from repro.prefix import Fib, Prefix, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


def small_vrf_fib(hop_base):
    fib = Fib(32)
    fib.insert(P("10.0.0.0/8"), hop_base)
    fib.insert(P("10.1.0.0/16"), hop_base + 1)
    fib.insert(P("192.168.0.0/16"), hop_base + 2)
    return fib


class TestTagPrefix:
    def test_widens_and_prepends(self):
        tagged = tag_prefix(P("10.0.0.0/8"), vrf_id=5, tag_bits=4)
        assert tagged.width == 36
        assert tagged.length == 12
        assert tagged.bits == (5 << 8) | 10

    def test_rejects_oversized_vrf(self):
        with pytest.raises(ValueError):
            tag_prefix(P("10.0.0.0/8"), vrf_id=16, tag_bits=4)


class TestVrfRouter:
    def test_isolated_routing(self):
        router = VrfRouter(width=32, max_vrfs=8)
        router.add_vrf(0, small_vrf_fib(0))
        router.add_vrf(3, small_vrf_fib(100))
        assert router.lookup(0, A("10.1.2.3")) == 1
        assert router.lookup(3, A("10.1.2.3")) == 101
        assert router.lookup(0, A("8.8.8.8")) is None

    def test_unknown_vrf_rejected(self):
        router = VrfRouter(width=32, max_vrfs=4)
        router.add_vrf(0, small_vrf_fib(0))
        with pytest.raises(KeyError):
            router.lookup(1, A("10.0.0.1"))

    def test_vrf_replacement_and_removal(self):
        router = VrfRouter(width=32, max_vrfs=4)
        router.add_vrf(0, small_vrf_fib(0))
        replacement = Fib(32)
        replacement.insert(P("172.16.0.0/12"), 9)
        router.add_vrf(0, replacement)
        assert router.lookup(0, A("172.16.5.5")) == 9
        assert router.lookup(0, A("10.0.0.1")) is None
        router.remove_vrf(0)
        assert router.vrf_ids() == []
        assert router.total_prefixes() == 0

    def test_width_mismatch_rejected(self):
        router = VrfRouter(width=32, max_vrfs=4)
        with pytest.raises(ValueError):
            router.add_vrf(0, Fib(64))

    def test_matches_per_vrf_oracles(self, ipv4_fib):
        """Coalesced lookup == independent per-VRF lookup, en masse."""
        from repro.datasets import mixed_addresses, synthesize_as65000

        vrfs = {
            0: ipv4_fib,
            1: synthesize_as65000(scale=0.002, seed=9),
            2: synthesize_as65000(scale=0.001, seed=10),
        }
        router = VrfRouter(width=32, max_vrfs=4)
        for vrf_id, fib in vrfs.items():
            router.add_vrf(vrf_id, fib)
        for vrf_id, fib in vrfs.items():
            for address in mixed_addresses(fib, 200, seed=30 + vrf_id):
                assert router.lookup(vrf_id, address) == fib.lookup(address)

    def test_bsic_factory(self):
        """Any width-agnostic algorithm can back the router."""
        router = VrfRouter(width=32, max_vrfs=4,
                           factory=lambda fib: Bsic(fib, k=19))
        router.add_vrf(0, small_vrf_fib(0))
        router.add_vrf(1, small_vrf_fib(50))
        assert router.lookup(1, A("192.168.3.4")) == 52


class TestCoalescingEconomics:
    def test_coalesced_beats_separate_on_tcam_blocks(self):
        """Idiom I5: many small VRFs fragment per-VRF TCAM blocks."""
        router = VrfRouter(width=32, max_vrfs=128)
        import numpy as np

        rng = np.random.default_rng(17)
        for vrf_id in range(64):
            fib = Fib(32)
            for value in rng.choice(1 << 24, size=50, replace=False):
                fib.insert(Prefix.from_bits(int(value), 24, 32),
                           int(rng.integers(0, 16)))
            router.add_vrf(vrf_id, fib)

        coalesced = map_to_ideal_rmt(router.coalesced_layout())
        separate = map_to_ideal_rmt(router.separate_layouts())
        # 64 VRFs x 50 entries: separate pays 64 whole blocks; coalesced
        # packs 3,200 tagged entries into ~7 blocks.
        assert separate.tcam_blocks == 64
        assert coalesced.tcam_blocks <= 8
