"""Unit tests for controlled prefix expansion."""

import pytest

from repro.prefix import BinaryTrie, expand_to_lengths, expansion_cost, from_bitstring


def P(s, width=8):
    return from_bitstring(s, width)


class TestExpandToLengths:
    def test_single_prefix_expands(self):
        out = expand_to_lengths([(P("1"), 5)], [3])
        assert sorted(p.bits for p, _ in out) == [0b100, 0b101, 0b110, 0b111]
        assert all(h == 5 for _, h in out)

    def test_longer_original_wins_collisions(self):
        # 1* -> expands over 10 and 11; the explicit 11/2 must win at 11.
        out = dict(expand_to_lengths([(P("1"), 5), (P("11"), 7)], [2]))
        assert out[P("10")] == 5
        assert out[P("11")] == 7

    def test_allowed_length_passthrough(self):
        out = expand_to_lengths([(P("10"), 1)], [2, 4])
        assert out == [(P("10"), 1)]

    def test_expansion_to_next_allowed(self):
        out = expand_to_lengths([(P("101"), 1)], [2, 4])
        assert sorted(p.bits for p, _ in out) == [0b1010, 0b1011]

    def test_too_long_rejected(self):
        with pytest.raises(ValueError):
            expand_to_lengths([(P("10101"), 1)], [2, 4])

    def test_empty_allowed_rejected(self):
        with pytest.raises(ValueError):
            expand_to_lengths([(P("1"), 1)], [])

    def test_preserves_lpm_semantics(self):
        """Expansion must not change any address's longest match."""
        entries = [(P("0"), 1), (P("01"), 2), (P("0110"), 3), (P("1011"), 4)]
        original = BinaryTrie(8)
        for p, h in entries:
            original.insert(p, h)
        expanded = BinaryTrie(8)
        for p, h in expand_to_lengths(entries, [4]):
            expanded.insert(p, h)
        for addr in range(256):
            assert expanded.lookup(addr) == original.lookup(addr), addr


class TestExpansionCost:
    def test_counts_raw_blowup(self):
        assert expansion_cost([(P("1"), 1)], [3]) == 4
        assert expansion_cost([(P("1"), 1), (P("111"), 2)], [3]) == 5

    def test_zero_for_exact_lengths(self):
        assert expansion_cost([(P("101"), 1)], [3]) == 1
