"""Cross-module integration tests.

Every algorithm, on realistic synthetic databases, must:
  1. agree with the reference trie on every lookup,
  2. agree with its own CRAM-model program under the interpreter,
  3. produce layouts whose chip mappings are internally consistent.
"""

import pytest

from repro.algorithms import (
    Bsic,
    Dxr,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Resail,
    Sail,
)
from repro.analysis import evaluate
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.core import measure

IPV4_MAKERS = [
    ("SAIL", lambda fib: Sail(fib)),
    ("RESAIL", lambda fib: Resail(fib, min_bmp=13)),
    ("BSIC", lambda fib: Bsic(fib, k=16)),
    ("DXR", lambda fib: Dxr(fib, k=16)),
    ("multibit", lambda fib: MultibitTrie(fib, [16, 4, 4, 8])),
    ("MASHUP", lambda fib: Mashup(fib)),
    ("HI-BST", lambda fib: HiBst(fib)),
    ("logical TCAM", lambda fib: LogicalTcam(fib)),
]

IPV6_MAKERS = [
    ("BSIC", lambda fib: Bsic(fib, k=24)),
    ("MASHUP", lambda fib: Mashup(fib)),
    ("HI-BST", lambda fib: HiBst(fib)),
    ("logical TCAM", lambda fib: LogicalTcam(fib)),
]


@pytest.mark.parametrize("name,maker", IPV4_MAKERS, ids=[n for n, _ in IPV4_MAKERS])
class TestIPv4Equivalence:
    def test_native_lookup_matches_oracle(self, name, maker, ipv4_fib, ipv4_addresses):
        algo = maker(ipv4_fib)
        for addr in ipv4_addresses:
            assert algo.lookup(addr) == ipv4_fib.lookup(addr), addr

    def test_cram_program_matches_native(self, name, maker, ipv4_fib, ipv4_addresses):
        algo = maker(ipv4_fib)
        for addr in ipv4_addresses[:100]:
            assert algo.cram_lookup(addr) == algo.lookup(addr), addr


@pytest.mark.parametrize("name,maker", IPV6_MAKERS, ids=[n for n, _ in IPV6_MAKERS])
class TestIPv6Equivalence:
    def test_native_lookup_matches_oracle(self, name, maker, ipv6_fib, ipv6_addresses):
        algo = maker(ipv6_fib)
        for addr in ipv6_addresses:
            assert algo.lookup(addr) == ipv6_fib.lookup(addr), addr

    def test_cram_program_matches_native(self, name, maker, ipv6_fib, ipv6_addresses):
        algo = maker(ipv6_fib)
        for addr in ipv6_addresses[:60]:
            assert algo.cram_lookup(addr) == algo.lookup(addr), addr


class TestModelHierarchyConsistency:
    """§2.4: CRAM measures lower-bound any implementation's costs."""

    @pytest.mark.parametrize("name,maker", IPV4_MAKERS[:6],
                             ids=[n for n, _ in IPV4_MAKERS[:6]])
    def test_cram_lower_bounds_chips(self, name, maker, ipv4_fib):
        algo = maker(ipv4_fib)
        metrics = algo.cram_metrics()
        ideal = map_to_ideal_rmt(algo.layout())
        tofino = map_to_tofino2(algo.layout())
        # Whole-unit mappings can only round up from fractional CRAM.
        assert ideal.sram_pages >= int(metrics.sram_pages) or metrics.sram_pages < 1
        assert tofino.sram_pages >= ideal.sram_pages
        assert tofino.stages >= ideal.stages >= metrics.steps or name == "DXR"

    def test_evaluate_bundles_all_models(self, ipv4_fib):
        report = evaluate(Resail(ipv4_fib))
        assert report.cram.steps == 2
        assert report.ideal_rmt.chip.name == "Ideal RMT"
        assert report.tofino2.chip.name == "Tofino-2"


class TestHeadlineClaims:
    """The paper's qualitative results must hold on synthetic data."""

    def test_resail_beats_sail_on_chip_resources(self, ipv4_fib):
        resail = map_to_ideal_rmt(Resail(ipv4_fib).layout())
        sail = map_to_ideal_rmt(Sail(ipv4_fib).layout())
        assert resail.sram_pages < sail.sram_pages
        assert resail.stages < sail.stages

    def test_resail_wins_ipv4_selection(self):
        """§6.4's choice at full scale, from the paper's Table 4 metrics.

        (At toy database sizes RESAIL's fixed 4 MB of bitmaps dominates
        and the rule picks differently — the selection is meaningful at
        BGP scale, which is exactly the paper's setting.)
        """
        from repro.analysis import select_best
        from repro.core import KB, MB, CramMetrics

        candidates = [
            ("RESAIL", CramMetrics(int(3.13 * KB), int(8.58 * MB), 2)),
            ("BSIC", CramMetrics(int(0.07 * MB), int(8.64 * MB), 10)),
            ("MASHUP", CramMetrics(int(0.31 * MB), int(5.92 * MB), 4)),
        ]
        winner, rationale = select_best(candidates)
        assert winner == "RESAIL"
        assert "TCAM" in rationale

    def test_bsic_wins_ipv6_selection(self, ipv6_fib):
        from repro.analysis import select_best

        candidates = [
            ("BSIC", Bsic(ipv6_fib, k=24).cram_metrics()),
            ("MASHUP", Mashup(ipv6_fib).cram_metrics()),
        ]
        winner, _ = select_best(candidates)
        assert winner == "BSIC"

    def test_mashup_uses_less_sram_more_tcam_than_resail(self, ipv4_fib):
        mashup = Mashup(ipv4_fib).cram_metrics()
        resail = Resail(ipv4_fib).cram_metrics()
        assert mashup.tcam_bits > 10 * resail.tcam_bits
        assert resail.steps < mashup.steps
