"""Live status endpoint tests (:mod:`repro.obs.status`).

Each test starts a :class:`StatusServer` on an ephemeral port
(``port=0``) and talks to it over real HTTP with the stdlib client —
no fixed ports, no external dependencies.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.status import StatusServer


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("repro_demo_total", "Demo counter.").inc(3, kind="x")
    return reg


class TestStatusServer:
    def test_metrics_endpoint_renders_prometheus(self, registry):
        with StatusServer(registry, port=0) as status:
            code, body = fetch(f"{status.url}/metrics")
        assert code == 200
        assert 'repro_demo_total{kind="x"} 3' in body

    def test_index_lists_endpoints(self, registry):
        with StatusServer(registry, port=0) as status:
            code, body = fetch(status.url + "/")
        assert code == 200
        doc = json.loads(body)
        assert "/metrics" in doc["endpoints"]
        assert "/health" in doc["endpoints"]

    def test_health_epoch_and_slo_payloads(self, registry):
        status = StatusServer(
            registry, port=0,
            health=lambda: {"state": "healthy"},
            epoch=lambda: 7,
            slo=lambda: {"breaches": 0})
        with status:
            _, health = fetch(f"{status.url}/health")
            _, epoch = fetch(f"{status.url}/epoch")
            _, slo = fetch(f"{status.url}/slo")
        assert json.loads(health) == {"state": "healthy"}
        assert json.loads(epoch) == {"epoch": 7}
        assert json.loads(slo) == {"breaches": 0}

    def test_spans_endpoint_honours_n(self, registry):
        recorder = SpanRecorder()
        for i in range(10):
            recorder.record(f"t{i}", "request", float(i), float(i) + 1,
                            seq=i)
        with StatusServer(registry, port=0,
                          spans=recorder.tail) as status:
            _, body = fetch(f"{status.url}/spans?n=3")
        doc = json.loads(body)
        assert len(doc) == 3
        assert doc[-1]["attrs"]["seq"] == 9

    def test_unknown_route_is_404(self, registry):
        with StatusServer(registry, port=0) as status:
            with pytest.raises(urllib.error.HTTPError) as err:
                fetch(f"{status.url}/nope")
            assert err.value.code == 404

    def test_unwired_route_answers_empty(self, registry):
        # No health callable given: /health answers {}, not a crash.
        with StatusServer(registry, port=0) as status:
            code, body = fetch(f"{status.url}/health")
        assert code == 200
        assert json.loads(body) == {}

    def test_ephemeral_port_is_assigned(self, registry):
        with StatusServer(registry, port=0) as status:
            assert status.port > 0
            assert str(status.port) in status.url

    def test_close_is_idempotent(self, registry):
        status = StatusServer(registry, port=0)
        status.start()
        status.close()
        status.close()
