"""Unit tests for the binary trie and Fib (the reference LPM)."""

import pytest

from repro.prefix import BinaryTrie, Fib, Prefix, from_bitstring, parse_prefix


def P(s, width=8):
    return from_bitstring(s, width)


class TestBinaryTrie:
    def test_empty_lookup_misses(self):
        assert BinaryTrie(8).lookup(0) is None

    def test_insert_and_lpm(self):
        t = BinaryTrie(8)
        t.insert(P("01"), 1)
        t.insert(P("0101"), 2)
        assert t.lookup(0b01010000) == 2
        assert t.lookup(0b01100000) == 1
        assert t.lookup(0b10000000) is None

    def test_default_route(self):
        t = BinaryTrie(8)
        t.insert(P(""), 9)
        assert t.lookup(0) == 9
        assert t.lookup(255) == 9

    def test_overwrite_updates_hop(self):
        t = BinaryTrie(8)
        t.insert(P("01"), 1)
        t.insert(P("01"), 7)
        assert len(t) == 1
        assert t.lookup(0b01000000) == 7

    def test_delete_restores_shorter_match(self):
        t = BinaryTrie(8)
        t.insert(P("01"), 1)
        t.insert(P("0101"), 2)
        t.delete(P("0101"))
        assert t.lookup(0b01010000) == 1
        assert len(t) == 1

    def test_delete_missing_raises(self):
        t = BinaryTrie(8)
        with pytest.raises(KeyError):
            t.delete(P("01"))
        t.insert(P("0101"), 1)
        with pytest.raises(KeyError):
            t.delete(P("01"))  # on the path but not an entry

    def test_delete_prunes_nodes(self):
        t = BinaryTrie(8)
        t.insert(P("01010101"), 1)
        t.delete(P("01010101"))
        assert t._root.children == [None, None]

    def test_lookup_prefix(self):
        t = BinaryTrie(8)
        t.insert(P("01"), 1)
        t.insert(P("0101"), 2)
        assert t.lookup_prefix(0b01010000) == P("0101")
        assert t.lookup_prefix(0b01100000) == P("01")
        assert t.lookup_prefix(0b10000000) is None

    def test_get_exact(self):
        t = BinaryTrie(8)
        t.insert(P("01"), 1)
        assert t.get(P("01")) == 1
        assert t.get(P("0101")) is None

    def test_items_sorted(self):
        t = BinaryTrie(8)
        entries = [(P("11"), 1), (P("0"), 2), (P("0101"), 3)]
        for p, h in entries:
            t.insert(p, h)
        got = list(t.items())
        assert got == sorted(entries, key=lambda kv: (kv[0].value, kv[0].length))

    def test_width_mismatch_rejected(self):
        t = BinaryTrie(8)
        with pytest.raises(ValueError):
            t.insert(from_bitstring("01", 16), 1)


class TestFib:
    def test_matches_trie_semantics(self, example_fib):
        for addr in range(256):
            direct = example_fib.lookup(addr)
            prefix = example_fib.lookup_prefix(addr)
            if direct is None:
                assert prefix is None
            else:
                assert prefix.matches(addr)
                assert example_fib.get(prefix) == direct

    def test_len_and_contains(self, example_fib):
        assert len(example_fib) == 8
        assert from_bitstring("011", 8) in example_fib
        assert from_bitstring("010", 8) not in example_fib

    def test_by_length_groups(self, example_fib):
        groups = example_fib.by_length()
        assert set(groups) == {3, 6, 8}
        assert len(groups[6]) == 3
        assert len(groups[8]) == 4

    def test_next_hops(self, example_fib):
        assert example_fib.next_hops() == [0, 1, 2, 3]

    def test_rejects_negative_hop(self):
        fib = Fib(8)
        with pytest.raises(ValueError):
            fib.insert(P("01"), -1)

    def test_delete(self):
        fib = Fib(8, [(P("01"), 1)])
        fib.delete(P("01"))
        assert len(fib) == 0
        assert fib.lookup(0b01000000) is None

    def test_iteration_is_sorted(self, ipv4_fib):
        entries = list(ipv4_fib)
        keys = [(p.value, p.length) for p, _ in entries]
        assert keys == sorted(keys)

    def test_reference_lookup_agrees_with_naive_scan(self, example_fib):
        entries = list(example_fib)
        for addr in range(256):
            matches = [(p.length, h) for p, h in entries if p.matches(addr)]
            want = max(matches)[1] if matches else None
            assert example_fib.lookup(addr) == want
