"""Unit tests for FIB file I/O."""

import io

import pytest

from repro.datasets import (
    FibFormatError,
    dumps_fib,
    load_fib,
    loads_fib,
    save_fib,
    synthesize_as131072,
)
from repro.prefix import Fib, parse_prefix


class TestLoad:
    def test_basic_parse(self):
        fib = loads_fib("""
            # a comment
            10.0.0.0/8 1
            10.1.0.0/16 2   # trailing comment
        """)
        assert len(fib) == 2
        assert fib.get(parse_prefix("10.1.0.0/16")) == 2

    def test_ipv6(self):
        fib = loads_fib("2001:db8::/32 7\n")
        assert fib.width == 64
        assert len(fib) == 1

    def test_rejects_mixed_families(self):
        with pytest.raises(FibFormatError, match="mixed"):
            loads_fib("10.0.0.0/8 1\n2001:db8::/32 2\n")

    def test_rejects_malformed_line(self):
        with pytest.raises(FibFormatError, match="expected"):
            loads_fib("10.0.0.0/8\n")

    def test_rejects_bad_prefix(self):
        with pytest.raises(FibFormatError):
            loads_fib("10.0.0.1/8 1\n")  # host bits set

    def test_rejects_bad_hop(self):
        with pytest.raises(FibFormatError, match="not an integer"):
            loads_fib("10.0.0.0/8 one\n")
        with pytest.raises(FibFormatError, match="negative"):
            loads_fib("10.0.0.0/8 -1\n")

    def test_rejects_empty(self):
        with pytest.raises(FibFormatError, match="empty"):
            loads_fib("# nothing here\n")

    def test_load_from_stream(self):
        fib = load_fib(io.StringIO("10.0.0.0/8 1\n"))
        assert len(fib) == 1


class TestRoundTrip:
    def test_ipv4_roundtrip(self, ipv4_fib):
        text = dumps_fib(ipv4_fib)
        again = loads_fib(text)
        assert list(again) == list(ipv4_fib)

    def test_ipv6_roundtrip(self):
        fib = synthesize_as131072(scale=0.01)
        again = loads_fib(dumps_fib(fib))
        assert list(again) == list(fib)

    def test_file_roundtrip(self, tmp_path, ipv4_fib):
        path = tmp_path / "fib.txt"
        save_fib(ipv4_fib, path)
        assert list(load_fib(path)) == list(ipv4_fib)

    def test_unsupported_width_rejected(self):
        fib = Fib(8)
        from repro.prefix import from_bitstring

        fib.insert(from_bitstring("01", 8), 1)
        with pytest.raises(ValueError, match="only IPv4/IPv6"):
            dumps_fib(fib)
