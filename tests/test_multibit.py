"""Unit tests for the multibit trie."""

import pytest

from repro.algorithms import MultibitTrie
from repro.algorithms.multibit import TrieNode
from repro.chip import map_to_ideal_rmt
from repro.prefix import Fib, from_bitstring, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


class TestTrieNode:
    def test_segment_expansion_precedence(self):
        node = TrieNode(stride=3, level=0)
        node.set_segment(0b1, 1, hop=1)  # covers 100..111
        node.set_segment(0b11, 2, hop=2)  # covers 110..111
        assert node.hop_at(0b100) == 1
        assert node.hop_at(0b110) == 2
        assert node.hop_at(0b000) is None

    def test_remove_segment_restores_shorter(self):
        node = TrieNode(stride=3, level=0)
        node.set_segment(0b1, 1, hop=1)
        node.set_segment(0b11, 2, hop=2)
        node.remove_segment(0b11, 2)
        assert node.hop_at(0b110) == 1
        with pytest.raises(KeyError):
            node.remove_segment(0b11, 2)

    def test_expanded_slots_matches_hop_at(self):
        node = TrieNode(stride=4, level=0)
        node.set_segment(0b10, 2, hop=5)
        node.set_segment(0b1011, 4, hop=6)
        slots = node.expanded_slots()
        for slot in range(16):
            assert slots.get(slot) == node.hop_at(slot)

    def test_tcam_items_merges_full_segment_with_child(self):
        node = TrieNode(stride=2, level=0)
        node.set_segment(0b10, 2, hop=1)
        node.children[0b10] = TrieNode(stride=2, level=1)
        assert node.tcam_items() == 1  # shared entry
        node.children[0b11] = TrieNode(stride=2, level=1)
        assert node.tcam_items() == 2

    def test_segment_length_bounds(self):
        node = TrieNode(stride=3, level=0)
        with pytest.raises(ValueError):
            node.set_segment(0, 0, hop=1)
        with pytest.raises(ValueError):
            node.set_segment(0, 4, hop=1)


class TestTrie:
    def test_strides_must_cover_width(self, ipv4_fib):
        with pytest.raises(ValueError):
            MultibitTrie(ipv4_fib, [16, 8])
        with pytest.raises(ValueError):
            MultibitTrie(ipv4_fib, [16, 8, 8, -0])

    def test_exhaustive_on_example(self, example_fib):
        trie = MultibitTrie(example_fib, [2, 1, 2, 3])
        for addr in range(256):
            assert trie.lookup(addr) == example_fib.lookup(addr), addr

    def test_matches_oracle(self, ipv4_fib, ipv4_addresses):
        trie = MultibitTrie(ipv4_fib, [16, 4, 4, 8])
        for addr in ipv4_addresses:
            assert trie.lookup(addr) == ipv4_fib.lookup(addr)

    def test_default_route(self):
        fib = Fib(32)
        fib.insert(P("0.0.0.0/0"), 9)
        trie = MultibitTrie(fib, [16, 16])
        assert trie.lookup(A("200.0.0.1")) == 9

    def test_insert_delete_roundtrip(self, example_fib):
        trie = MultibitTrie(example_fib, [2, 1, 2, 3])
        extra = from_bitstring("1111", 8)
        trie.insert(extra, 7)
        assert trie.lookup(0b11110000) == 7
        trie.delete(extra)
        for addr in range(256):
            assert trie.lookup(addr) == example_fib.lookup(addr)

    def test_delete_prunes_empty_nodes(self, example_fib):
        trie = MultibitTrie(example_fib, [2, 1, 2, 3])
        nodes_before = sum(len(l) for l in trie.nodes_by_level())
        deep = from_bitstring("11111111", 8)
        trie.insert(deep, 7)
        trie.delete(deep)
        assert sum(len(l) for l in trie.nodes_by_level()) == nodes_before

    def test_delete_missing_raises(self, example_fib):
        trie = MultibitTrie(example_fib, [2, 1, 2, 3])
        with pytest.raises(KeyError):
            trie.delete(from_bitstring("11", 8))


class TestModel:
    def test_steps_equal_levels(self, example_fib):
        trie = MultibitTrie(example_fib, [2, 1, 2, 3])
        assert trie.cram_metrics().steps == 4

    def test_cram_program_equivalence(self, example_fib):
        trie = MultibitTrie(example_fib, [2, 1, 2, 3])
        for addr in range(0, 256, 3):
            assert trie.cram_lookup(addr) == trie.lookup(addr)

    def test_memory_charges_full_nodes(self, example_fib):
        trie = MultibitTrie(example_fib, [2, 1, 2, 3])
        levels = trie.nodes_by_level()
        expected = sum(
            len(nodes) * (1 << stride)
            for nodes, stride in zip(levels, trie.strides)
        )
        assert trie.layout().total_entries() == expected

    def test_wide_stride_accounting_explodes(self, ipv6_fib):
        """The §5 motivation: naive IPv6 multibit tries are infeasible."""
        trie = MultibitTrie(ipv6_fib, [20, 12, 16, 16])
        assert not map_to_ideal_rmt(trie.layout()).feasible
