"""Byte-stable golden-file regression for the deterministic sidecar values.

The benchmark sidecars (``benchmarks/results/*.json``) keep their
deterministic numbers in a ``values`` section precisely so regressions
are diffable.  These tests recompute the two most load-bearing
payloads at a pinned scale and compare the *bytes* of their canonical
JSON rendering against checked-in golden files:

* ``tests/golden/tab04_cram_metrics.json`` — Table 4's CRAM metrics
  (TCAM bits / SRAM bits / steps) for MASHUP, BSIC, and RESAIL, the
  numbers the paper's §6.4 selection argument rests on;
* ``tests/golden/managed_churn_outcomes.json`` — the managed runtime's
  batch outcome counts (applied/rebuilt/rolled back, planned and
  recovery rebuilds, final health) for the ``update_fault_ranking``
  sidecar's churn-under-faults run.

Any byte difference — a renamed key, a changed count, a float format
drift — fails loudly.  **If a change is intentional**, regenerate with

    PYTHONPATH=src python -m pytest tests/test_golden_tables.py --regen-golden

review the diff of ``tests/golden/``, and commit it alongside the
change that caused it.  (The ``--regen-golden`` option is registered
in ``tests/conftest.py``.)
"""

import json
from pathlib import Path

from repro.algorithms import Bsic, Mashup, Resail
from repro.control import (
    ALL_FAULTS,
    ChurnGenerator,
    FaultPlan,
    ManagedFib,
)
from repro.datasets import synthesize_as65000

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Pinned inputs — golden files are only meaningful for exact inputs.
SCALE = 0.002
CHURN_OPS, BATCH_SIZE, SEED = 120, 15, 17


def canonical(doc) -> bytes:
    """The byte-stable rendering golden files are stored in."""
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("ascii")


def check_golden(name: str, doc, regen: bool) -> None:
    path = GOLDEN_DIR / f"{name}.json"
    rendered = canonical(doc)
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_bytes(rendered)
        return
    assert path.exists(), (
        f"golden file {path} missing; create it with --regen-golden"
    )
    assert rendered == path.read_bytes(), (
        f"{name} drifted from its golden file; if intentional, rerun with "
        f"--regen-golden and commit the tests/golden/ diff"
    )


def test_tab04_cram_metrics_golden(regen_golden):
    fib = synthesize_as65000(scale=SCALE)
    rows = [
        (algo.name, algo.cram_metrics())
        for algo in (
            Mashup(fib, (16, 4, 4, 8)),
            Bsic(fib, k=16),
            Resail(fib, min_bmp=13),
        )
    ]
    doc = {
        "scale": SCALE,
        "prefixes": len(fib),
        "metrics": {
            name: {"tcam_bits": m.tcam_bits, "sram_bits": m.sram_bits,
                   "steps": m.steps}
            for name, m in rows
        },
    }
    check_golden("tab04_cram_metrics", doc, regen_golden)


def test_managed_churn_outcomes_golden(regen_golden):
    base = synthesize_as65000(scale=SCALE)
    schemes = [
        ("RESAIL", lambda fib: Resail(fib, min_bmp=13, hash_capacity=1 << 16)),
        ("BSIC", lambda fib: Bsic(fib, k=16)),
    ]
    outcomes = {}
    for name, factory in schemes:
        managed = ManagedFib(
            factory, base,
            faults=FaultPlan.build(sorted(ALL_FAULTS), seed=SEED),
            check_seed=SEED,
        )
        for batch in ChurnGenerator(base, seed=SEED).batches(CHURN_OPS,
                                                             BATCH_SIZE):
            managed.apply_batch(batch)
        managed.log.check_accounting()
        log = managed.log
        outcomes[name] = {
            "applied": log.count("batch_applied"),
            "rebuilt": log.count("batch_rebuilt"),
            "rolled_back": log.count("batch_rolled_back"),
            "rebuild_planned": log.count("rebuild_planned"),
            "rebuild_recovery": log.count("rebuild_recovery"),
            "health": str(managed.health),
        }
    doc = {
        "scale": SCALE,
        "churn_ops": CHURN_OPS,
        "batch_size": BATCH_SIZE,
        "seed": SEED,
        "outcomes": outcomes,
    }
    check_golden("managed_churn_outcomes", doc, regen_golden)
