"""Unit tests for the analysis harness (reports, scaling, trade-off, accuracy)."""

import pytest

from repro.algorithms import Bsic, Resail
from repro.analysis import (
    Comparison,
    Table,
    accuracy_report,
    bsic_k_sweep,
    chip_mapping_table,
    cram_metrics_table,
    hibst_max_feasible,
    ipv4_max_feasible,
    ipv4_scaling_series,
    ipv6_max_feasible,
    ipv6_scaling_series,
    optimal_k,
    render_comparisons,
    sail_max_feasible,
    select_best,
)
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.core import CramMetrics


class TestReportRendering:
    def test_table_render(self):
        table = Table("Demo", ["A", "B"])
        table.add_row("x", 1200)
        table.add_row("y", None)
        text = table.render()
        assert "Demo" in text
        assert "1,200" in text
        assert "-" in text  # None renders as the paper's dash

    def test_row_arity_checked(self):
        table = Table("Demo", ["A", "B"])
        with pytest.raises(ValueError):
            table.add_row("only one")

    def test_cram_metrics_table(self):
        out = cram_metrics_table(
            "Table 4", [("RESAIL", CramMetrics(25_641, 71_968_358, 2))]
        ).render()
        assert "3.13 KB" in out
        assert "8.58 MB" in out

    def test_chip_mapping_table_with_pseudo_row(self):
        mapping = map_to_ideal_rmt(
            Resail.__new__(Resail) if False else _small_resail_layout()
        )
        out = chip_mapping_table("Table 8", [
            ("RESAIL", mapping),
            ("Tofino-2 Pipe Limit", 480, 1600, 20, "-"),
        ]).render()
        assert "Pipe Limit" in out
        assert "Ideal RMT" in out

    def test_comparisons_render(self):
        text = render_comparisons([
            Comparison("Table 4", "RESAIL SRAM", "8.58 MB", "8.58 MB"),
            Comparison("Table 6", "stages", 9, 9, note="exact"),
        ])
        assert "paper=8.58 MB" in text
        assert "(exact)" in text


def _small_resail_layout():
    from repro.algorithms.resail import resail_layout_from_counts

    return resail_layout_from_counts(long_prefixes=100, hash_entries=10_000)


class TestSelectBest:
    def test_prefers_tcam_frugality(self):
        winner, rationale = select_best([
            ("tcam-hungry", CramMetrics(10_000_000, 1_000_000, 4)),
            ("sram-hungry", CramMetrics(10_000, 12_000_000, 2)),
        ])
        assert winner == "sram-hungry"
        assert "x less TCAM" in rationale or "TCAM" in rationale

    def test_single_candidate(self):
        winner, rationale = select_best([("only", CramMetrics(1, 1, 1))])
        assert winner == "only"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_best([])


class TestIPv4Scaling:
    def test_series_shapes(self):
        series = ipv4_scaling_series([0.5, 1.0, 2.0])
        assert set(series) == {"RESAIL / Ideal RMT", "RESAIL / Tofino-2",
                               "SAIL / Ideal RMT"}
        for points in series.values():
            sizes = [p.size for p in points]
            assert sizes == sorted(sizes)

    def test_resail_pages_grow_monotonically(self):
        series = ipv4_scaling_series([1.0, 2.0, 3.0])["RESAIL / Ideal RMT"]
        pages = [p.sram_pages for p in series]
        assert pages == sorted(pages)

    def test_tofino_needs_more_than_ideal(self):
        series = ipv4_scaling_series([1.0])
        assert (series["RESAIL / Tofino-2"][0].sram_pages
                > series["RESAIL / Ideal RMT"][0].sram_pages)

    def test_sail_always_infeasible(self):
        series = ipv4_scaling_series([0.5, 1.0])["SAIL / Ideal RMT"]
        assert all(not p.feasible for p in series)
        assert sail_max_feasible(map_to_ideal_rmt) == 0

    def test_paper_figure9_frontiers(self):
        """RESAIL scales to ~3.8M (ideal) / ~2.25M (Tofino-2) prefixes."""
        ideal = ipv4_max_feasible(map_to_ideal_rmt)
        tofino = ipv4_max_feasible(map_to_tofino2)
        assert 3_000_000 <= ideal <= 4_600_000
        assert 1_700_000 <= tofino <= 2_800_000
        assert tofino < ideal


class TestIPv6Scaling:
    def test_series_and_frontiers(self, ipv6_fib):
        bsic = Bsic(ipv6_fib)
        base = bsic.layout()
        series = ipv6_scaling_series(base, len(ipv6_fib), [1, 2, 4])
        assert all(len(v) == 3 for v in series.values())
        bsic_pts = series["BSIC / Ideal RMT"]
        assert bsic_pts[2].sram_pages >= bsic_pts[0].sram_pages

    def test_hibst_frontier_near_paper(self):
        """Paper §7.2: HI-BST tops out around 340k prefixes."""
        assert 320_000 <= hibst_max_feasible(map_to_ideal_rmt) <= 360_000

    def test_bsic_out_scales_hibst(self, ipv6_fib):
        bsic = Bsic(ipv6_fib)
        scale = 193_060 / len(ipv6_fib)  # normalize sample to full size
        base = bsic.layout().scaled(scale)
        bsic_ideal = ipv6_max_feasible(base, 193_060, map_to_ideal_rmt)
        hibst = hibst_max_feasible(map_to_ideal_rmt)
        assert bsic_ideal > hibst


class TestTradeoff:
    def test_k_sweep_and_optimum(self, ipv6_fib):
        points = bsic_k_sweep(ipv6_fib, ks=[16, 20, 24, 28])
        assert [p.k for p in points] == [16, 20, 24, 28]
        # CRAM steps fall with k (shallower BSTs)...
        assert points[-1].cram_steps <= points[0].cram_steps
        # ...but TCAM entries rise.
        assert points[-1].initial_entries >= points[0].initial_entries
        best = optimal_k(points)
        assert best in {16, 20, 24, 28}

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            optimal_k([])


class TestAccuracy:
    def test_hierarchy_rows(self, ipv4_fib):
        report = accuracy_report(Resail(ipv4_fib, min_bmp=13))
        assert [r.model for r in report.rows] == ["CRAM", "Ideal RMT", "Tofino-2"]
        cram, ideal, tofino = report.rows
        assert cram.steps == 2
        assert ideal.sram_pages >= cram.sram_pages * 0.95
        assert tofino.sram_pages > ideal.sram_pages

    def test_factors(self, ipv4_fib):
        report = accuracy_report(Resail(ipv4_fib, min_bmp=13))
        assert report.factor("sram_pages", "Ideal RMT", "Tofino-2") > 1.0
        with pytest.raises(KeyError):
            report.row("FPGA")
