"""Stateful data-plane operations in the CRAM model (§2.6).

Builds a per-prefix packet counter: an LPM step resolves a route, then
a register-match step increments that route's counter.  Verifies (a)
the machine semantics — counters accumulate across packets, and (b)
the accounting — register bits are counted separately from TCAM/SRAM.
"""

import pytest

from repro.core import (
    CramProgram,
    Step,
    measure,
    register_table,
    run,
    ternary_table,
)
from repro.memory import TcamTable
from repro.prefix import parse_ipv4_prefix


@pytest.fixture()
def counter_program():
    routes = TcamTable(32, name="fib")
    routes.insert_prefix(parse_ipv4_prefix("10.0.0.0/8"), 0)
    routes.insert_prefix(parse_ipv4_prefix("10.1.0.0/16"), 1)
    counters = [0, 0]

    prog = CramProgram("counted-lpm", registers=["addr", "route", "count"])
    fib = ternary_table("fib", 32, len(routes), 8,
                        key_selector=lambda s: s["addr"], backing=routes)
    prog.add_step(Step("lpm", table=fib, reads=["addr"], writes=["route"],
                       action=lambda s, r: s.__setitem__("route", r)))

    def bump(state: dict, result) -> None:
        if state["route"] is not None:
            counters[state["route"]] += 1
            state["count"] = counters[state["route"]]

    regs = register_table(
        "per-route counters", entries=len(counters), register_width=64,
        key_selector=lambda s: s.get("route"),
        backing=lambda i: counters[i],
    )
    prog.add_step(Step("count", table=regs, reads=["route"],
                       writes=["count"], action=bump), after=["lpm"])
    return prog, counters


class TestStatefulSemantics:
    def test_counters_accumulate(self, counter_program):
        prog, counters = counter_program
        for _ in range(3):
            run(prog, {"addr": 0x0A000001})  # 10.0.0.1 -> route 0
        run(prog, {"addr": 0x0A010001})  # 10.1.0.1 -> route 1
        assert counters == [3, 1]

    def test_miss_does_not_count(self, counter_program):
        prog, counters = counter_program
        run(prog, {"addr": 0x0B000001})
        assert counters == [0, 0]

    def test_final_state_carries_count(self, counter_program):
        prog, _counters = counter_program
        state = run(prog, {"addr": 0x0A000001})
        assert state["count"] == 1


class TestStatefulAccounting:
    def test_register_bits_counted_separately(self, counter_program):
        prog, _counters = counter_program
        metrics = measure(prog)
        assert metrics.register_bits == 2 * 64
        # The register table contributes nothing to plain SRAM/TCAM.
        assert metrics.tcam_bits == 2 * 32  # the FIB only
        assert metrics.sram_bits == 2 * 8  # the FIB's next hops only

    def test_register_table_shape(self):
        spec = register_table("r", entries=1024, register_width=32)
        assert spec.register_bits == 1024 * 32
        assert spec.sram_bits() == 0
        assert spec.tcam_bits() == 0
