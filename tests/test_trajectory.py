"""Benchmark trajectory tests (:mod:`repro.obs.trajectory`).

History building and regression detection against synthetic sidecars
— plus the classification rules the warnings hinge on (throughput
drops are bad, latency inflations are bad, everything else ignored).
"""

import json

import pytest

from repro.obs import trajectory


def write_sidecar(directory, name, *, values=None, timings=None):
    doc = {"bench": name}
    if values is not None:
        doc["values"] = values
    if timings is not None:
        doc["timings"] = timings
    (directory / f"{name}.json").write_text(
        json.dumps(doc, sort_keys=True) + "\n")


class TestMetricKind:
    @pytest.mark.parametrize("name,kind", [
        ("timings.concurrent_lookups_per_s", "throughput"),
        ("timings.speedup_x", "throughput"),
        ("timings.faulted_throughput_x", "throughput"),
        ("timings.latency.concurrent.request.p99_s", "latency"),
        ("timings.concurrent_p999_s", "latency"),
        ("timings.recovery_s", "latency"),
        ("timings.thread.request_p50_s", "latency"),
        ("values.workers", None),
        ("timings.sequential_s", None),
    ])
    def test_classification(self, name, kind):
        assert trajectory.metric_kind(name) == kind


class TestHistory:
    def test_append_assigns_increasing_run_indices(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        history = tmp_path / "BENCH_history.jsonl"
        write_sidecar(results, "demo",
                      timings={"lookups_per_s": 100.0})
        run1, records1 = trajectory.append_run(str(results), str(history))
        run2, records2 = trajectory.append_run(str(results), str(history))
        assert (run1, run2) == (1, 2)
        assert len(records1) == len(records2) == 1
        loaded = trajectory.load_history(str(history))
        assert [r["run"] for r in loaded] == [1, 2]
        assert all(r["history_version"] == trajectory.HISTORY_VERSION
                   for r in loaded)

    def test_empty_results_dir_appends_nothing(self, tmp_path):
        history = tmp_path / "h.jsonl"
        run, records = trajectory.append_run(str(tmp_path / "none"),
                                             str(history))
        assert records == []
        assert not history.exists()

    def test_non_sidecar_json_is_skipped(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "junk.json").write_text('{"no_bench_key": 1}\n')
        (results / "broken.json").write_text("{nope")
        assert trajectory.collect_sidecars(str(results)) == []

    def test_flattening_nests_and_skips_non_numbers(self, tmp_path):
        record = trajectory.extract_record(1, "demo", {
            "values": {"workers": 4, "algo": "resail", "nested": {"x": 2}},
            "timings": {"lookups_per_s": 10.0, "flag": True},
        })
        metrics = record["metrics"]
        assert metrics["values.workers"] == 4.0
        assert metrics["values.nested.x"] == 2.0
        assert metrics["timings.lookups_per_s"] == 10.0
        assert "values.algo" not in metrics
        assert "timings.flag" not in metrics  # bools are not numbers


class TestCompare:
    def _history(self, *runs):
        """Build history records for one bench across several runs."""
        return [
            {"history_version": 1, "run": i + 1, "bench": "demo",
             "metrics": metrics}
            for i, metrics in enumerate(runs)
        ]

    def test_single_run_is_baseline(self):
        report = trajectory.compare_runs(
            self._history({"timings.lookups_per_s": 100.0}))
        assert report["ok"]
        assert report["findings"][0]["kind"] == "baseline"

    def test_throughput_drop_warns(self):
        report = trajectory.compare_runs(self._history(
            {"timings.lookups_per_s": 100.0},
            {"timings.lookups_per_s": 80.0}))  # -20% > 10% threshold
        assert not report["ok"]
        assert report["warnings"][0]["metric"] == "timings.lookups_per_s"
        assert report["warnings"][0]["change_pct"] == -20.0

    def test_latency_inflation_warns(self):
        report = trajectory.compare_runs(self._history(
            {"timings.request_p99_s": 0.010},
            {"timings.request_p99_s": 0.020}))  # +100%
        assert not report["ok"]
        assert report["warnings"][0]["kind"] == "latency"

    def test_improvements_and_small_changes_pass(self):
        report = trajectory.compare_runs(self._history(
            {"timings.lookups_per_s": 100.0, "timings.request_p99_s": 0.02},
            {"timings.lookups_per_s": 108.0, "timings.request_p99_s": 0.019}))
        assert report["ok"]
        assert len([f for f in report["findings"]
                    if f["kind"] != "baseline"]) == 2

    def test_threshold_is_respected(self):
        history = self._history(
            {"timings.lookups_per_s": 100.0},
            {"timings.lookups_per_s": 85.0})  # -15%
        assert not trajectory.compare_runs(history, threshold=0.10)["ok"]
        assert trajectory.compare_runs(history, threshold=0.20)["ok"]

    def test_unclassified_metrics_are_ignored(self):
        report = trajectory.compare_runs(self._history(
            {"values.workers": 4.0}, {"values.workers": 1.0}))
        assert report["ok"]

    def test_render_report_mentions_warnings(self):
        report = trajectory.compare_runs(self._history(
            {"timings.lookups_per_s": 100.0},
            {"timings.lookups_per_s": 50.0}))
        text = trajectory.render_report(report)
        assert "[WARN]" in text
        assert "dropped" in text
        assert "1 warning(s)" in text


class TestCli:
    def test_bench_history_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        results = tmp_path / "results"
        results.mkdir()
        history = tmp_path / "BENCH_history.jsonl"
        write_sidecar(results, "demo",
                      timings={"lookups_per_s": 100.0})
        args = ["bench-history", "--results-dir", str(results),
                "--history", str(history), "--check"]
        assert main(args) == 0
        assert "run 1" in capsys.readouterr().out
        # A 50% throughput collapse: soft gate still exits 0, strict
        # exits 1.
        write_sidecar(results, "demo",
                      timings={"lookups_per_s": 50.0})
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "soft gate" in out and "[WARN]" in out
        write_sidecar(results, "demo",
                      timings={"lookups_per_s": 25.0})
        assert main(args + ["--strict"]) == 1

    def test_report_out_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        results = tmp_path / "results"
        results.mkdir()
        write_sidecar(results, "demo", timings={"lookups_per_s": 1.0})
        report_path = tmp_path / "report.json"
        assert main(["bench-history", "--results-dir", str(results),
                     "--history", str(tmp_path / "h.jsonl"),
                     "--report-out", str(report_path)]) == 0
        doc = json.loads(report_path.read_text())
        assert doc["history_version"] == trajectory.HISTORY_VERSION
