"""Unit tests for the SRAM table simulators."""

import pytest

from repro.memory import Bitmap, DirectIndexTable, ExactMatchTable


class TestDirectIndexTable:
    def test_store_load(self):
        t = DirectIndexTable(4, 8)
        t.store(3, 42)
        assert t.load(3) == 42
        assert t.load(4) is None

    def test_bounds(self):
        t = DirectIndexTable(4, 8)
        with pytest.raises(IndexError):
            t.store(16, 1)
        with pytest.raises(IndexError):
            t.load(-1)

    def test_clear_slot(self):
        t = DirectIndexTable(4, 8)
        t.store(3, 42)
        t.clear_slot(3)
        assert t.load(3) is None
        t.clear_slot(3)  # idempotent

    def test_sram_bits_charges_full_capacity(self):
        t = DirectIndexTable(10, 8)
        assert t.sram_bits() == 1024 * 8  # populated or not
        t.store(0, 1)
        assert t.sram_bits() == 1024 * 8

    def test_items_sorted(self):
        t = DirectIndexTable(4, 8)
        t.store(5, 1)
        t.store(2, 2)
        assert list(t.items()) == [(2, 2), (5, 1)]


class TestExactMatchTable:
    def test_store_load_delete(self):
        t = ExactMatchTable(16, 8)
        t.store(0xABCD, 7)
        assert t.load(0xABCD) == 7
        t.delete(0xABCD)
        assert t.load(0xABCD) is None
        with pytest.raises(KeyError):
            t.delete(0xABCD)

    def test_key_width_enforced(self):
        t = ExactMatchTable(8, 8)
        with pytest.raises(ValueError):
            t.store(0x100, 1)

    def test_sram_bits_counts_keys_and_data(self):
        t = ExactMatchTable(16, 8)
        t.store(1, 1)
        t.store(2, 2)
        assert t.sram_bits() == 2 * (16 + 8)


class TestBitmap:
    def test_set_test(self):
        b = Bitmap(8)
        assert not b.test(5)
        b.set(5)
        assert b.test(5)
        b.set(5, False)
        assert not b.test(5)

    def test_set_many_and_len(self):
        b = Bitmap(8)
        b.set_many([1, 3, 5])
        assert len(b) == 3
        assert b.test(3)

    def test_sram_bits_is_capacity(self):
        assert Bitmap(20).sram_bits() == 1 << 20

    def test_capacity(self):
        assert Bitmap(0).capacity == 1
