"""The lane compiler: SoA register file, vector views, snapshots.

Conformance of the vector plan against the oracle is covered by
``test_engine_conformance.py``; this file tests the machinery itself —
:class:`~repro.core.vector.Lanes` invariants, the ``gather`` contract
of each view, snapshot isolation (a compiled vector plan must keep
answering from its frozen tables until recompiled), the ``MISS_HOP``
sentinel convention, scalar delegation for over-wide addresses, and
the engine's ``backend`` knob.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import HiBst, LogicalTcam, MultibitTrie, Sail
from repro.control import ChurnGenerator, ManagedFib
from repro.core import (
    MISS_HOP,
    VectorBridgeError,
    VectorError,
    VectorStepSpec,
    compile_plan,
    compile_vector_plan,
)
from repro.core.vector import (
    DENSE_LIMIT,
    MATRIX_ROW_LIMIT,
    BitmapView,
    DenseArrayView,
    Lanes,
    SparseMapView,
    TcamGroupView,
    TcamMatrixView,
    map_view,
    popcount64,
)
from repro.engine import BatchEngine
from repro.prefix import Fib, Prefix


class BridgedTcam(LogicalTcam):
    """LogicalTcam with its lowering withheld: every step bridges.

    Now that all nine real algorithms lower fully, the mixed-mode and
    auto-fallback paths need a synthetic algorithm to stay covered.
    """

    def vector_specs(self):
        return {}


def small_v4_fib():
    fib = Fib(32)
    fib.insert(Prefix.from_bits(0x0A, 8, 32), 1)        # 10.0.0.0/8
    fib.insert(Prefix.from_bits(0x0A01, 16, 32), 2)     # 10.1.0.0/16
    fib.insert(Prefix.from_bits(0xC0A801, 24, 32), 3)   # 192.168.1.0/24
    fib.insert(Prefix.from_bits(0xC0A80180 >> 6, 26, 32), 4)
    return fib


def small_v8_fib():
    fib = Fib(8)
    fib.insert(Prefix.from_bits(0b1, 1, 8), 1)
    fib.insert(Prefix.from_bits(0b1010, 4, 8), 2)
    fib.insert(Prefix.from_bits(0b00110011, 8, 8), 3)
    return fib


# ---------------------------------------------------------------------------
# Lanes: the SoA register file
# ---------------------------------------------------------------------------


class TestLanes:
    def test_none_lanes_hold_zero(self):
        lanes = Lanes(["r"], 4)
        lanes.assign("r", np.array([5, 6, 7, 8]),
                     none=np.array([False, True, False, True]))
        assert lanes.values("r").tolist() == [5, 0, 7, 0]
        assert lanes.is_none("r").tolist() == [False, True, False, True]
        assert lanes.truthy("r").tolist() == [True, False, True, False]
        assert lanes.present("r").tolist() == [True, False, True, False]

    def test_assign_where_masks_and_clears(self):
        lanes = Lanes(["r"], 4)
        lanes.fill("r", 9)
        where = np.array([True, False, True, False])
        lanes.assign_where("r", where, np.array([1, 2, 3, 4]),
                           none=np.array([False, True, True, True]))
        # Unselected lanes keep their value; selected lane 2 went None.
        assert lanes.lane_value("r", 0) == 1
        assert lanes.lane_value("r", 1) == 9
        assert lanes.lane_value("r", 2) is None
        assert lanes.values("r")[2] == 0  # sentinel invariant

    def test_fill_none_and_roundtrip(self):
        lanes = Lanes(["r"], 3)
        lanes.fill("r", None)
        assert all(lanes.lane_value("r", i) is None for i in range(3))
        lanes.set_lane("r", 1, 42)
        assert lanes.lane_value("r", 1) == 42
        lanes.set_lane("r", 1, None)
        assert lanes.lane_value("r", 1) is None

    def test_object_sidecar_for_unrepresentable_values(self):
        lanes = Lanes(["r"], 2)
        lanes.set_lane("r", 0, 1 << 70)      # overflows int64
        lanes.set_lane("r", 1, ("node", 3))  # not an int at all
        assert lanes.lane_value("r", 0) == 1 << 70
        assert lanes.lane_value("r", 1) == ("node", 3)
        # A vector write through the same register clears the sidecar.
        lanes.assign("r", np.array([7, 8]))
        assert lanes.lane_value("r", 0) == 7


# ---------------------------------------------------------------------------
# Vector table views
# ---------------------------------------------------------------------------


class TestViews:
    def test_bitmap_view_found_equals_probed(self):
        view = BitmapView(np.array([0, 1, 0, 1], dtype=np.uint8))
        keys = np.array([0, 1, 2, 3])
        active = np.array([True, True, False, True])
        vals, found = view.gather(keys, active)
        assert vals.tolist() == [0, 1, 0, 1]
        assert found.tolist() == [True, True, False, True]

    def test_dense_view_distinguishes_zero_from_absent(self):
        view = map_view({0: 0, 2: 5}, capacity=4)
        assert isinstance(view, DenseArrayView)
        vals, found = view.gather(np.array([0, 1, 2, 3]),
                                  np.ones(4, dtype=bool))
        assert found.tolist() == [True, False, True, False]
        assert vals.tolist() == [0, 0, 5, 0]

    def test_sparse_view_probe_and_empty(self):
        view = map_view({1 << 30: 7, 5: 2})  # no capacity: sparse
        assert isinstance(view, SparseMapView)
        vals, found = view.gather(np.array([5, 6, 1 << 30]),
                                  np.ones(3, dtype=bool))
        assert vals.tolist() == [2, 0, 7]
        assert found.tolist() == [True, False, True]
        empty = map_view({}, capacity=DENSE_LIMIT + 1)
        vals, found = empty.gather(np.array([3]), np.ones(1, dtype=bool))
        assert not found.any() and vals.tolist() == [0]

    def test_map_view_rejects_non_int_values(self):
        assert map_view({1: ("obj",)}) is None
        # Stored None means miss and is dropped, like the scalar reader.
        view = map_view({1: None, 2: 9}, capacity=4)
        _vals, found = view.gather(np.array([1, 2]), np.ones(2, dtype=bool))
        assert found.tolist() == [False, True]

    def test_tcam_view_first_row_wins(self):
        # Row 0 is the higher-priority (longer) match by construction.
        view = TcamMatrixView(
            values=np.array([0b1010_0000, 0b1000_0000], dtype=np.int64),
            masks=np.array([0b1111_0000, 0b1100_0000], dtype=np.int64),
            data=np.array([1, 2], dtype=np.int64))
        keys = np.array([0b1010_1010, 0b1001_0000, 0b0000_0001])
        vals, found = view.gather(keys, np.ones(3, dtype=bool))
        assert vals.tolist() == [1, 2, 0]
        assert found.tolist() == [True, True, False]

    def test_tcam_group_view_matches_matrix_view(self):
        # Same table rendered both ways must answer identically; the
        # reader switches at MATRIX_ROW_LIMIT, where the broadcast
        # matrix intermediates stop being worth their O(lanes x rows).
        from repro.memory.tcam import TcamTable

        fib = Fib(8)
        rng = np.random.default_rng(7)
        for length in range(1, 9):
            for bits in rng.integers(0, 1 << length, size=40).tolist():
                fib.insert(Prefix.from_bits(int(bits), length, 8),
                           int(length))
        table = TcamTable(8, name="t")
        for prefix, hop in fib:
            table.insert_prefix(prefix, hop)
        assert len(table) > MATRIX_ROW_LIMIT
        group = table.vector_reader()
        assert isinstance(group, TcamGroupView)
        entries = sorted(  # the matrix form, built by hand
            (e.priority, e.mask, e.value & e.mask, e.data)
            for e in table.entries())
        matrix = TcamMatrixView(
            np.array([v for _p, _m, v, _d in entries], dtype=np.int64),
            np.array([m for _p, m, _v, _d in entries], dtype=np.int64),
            np.array([d for _p, _m, _v, d in entries], dtype=np.int64))
        keys = np.arange(256, dtype=np.int64)
        active = np.ones(256, dtype=bool)
        gv, gf = group.gather(keys, active)
        mv, mf = matrix.gather(keys, active)
        assert gf.tolist() == mf.tolist()
        assert gv.tolist() == mv.tolist()

    def test_small_tcam_still_renders_as_matrix(self):
        from repro.memory.tcam import TcamTable

        table = TcamTable(8)
        table.insert_prefix(Prefix.from_bits(0b1, 1, 8), 1)
        assert isinstance(table.vector_reader(), TcamMatrixView)

    def test_wide_tcam_has_no_vector_view(self):
        from repro.memory.tcam import TcamTable

        table = TcamTable(64)
        table.insert_prefix(Prefix.from_bits(0b1, 1, 64), 1)
        # 64-bit masked values overflow int64 lanes: bridge instead.
        assert table.vector_reader() is None

    def test_popcount64_matches_python(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1 << 63, size=64, dtype=np.int64)
        values = values.astype(np.uint64)
        values[0] = np.uint64(0)
        values[1] = np.uint64(0xFFFFFFFFFFFFFFFF)
        expected = [bin(int(v)).count("1") for v in values.tolist()]
        assert popcount64(values).tolist() == expected


# ---------------------------------------------------------------------------
# Satellite regression: LookupPlan.lookup_batch(out=...)
# ---------------------------------------------------------------------------


def test_plan_lookup_batch_out_does_not_accumulate():
    fib = small_v8_fib()
    plan = compile_plan(LogicalTcam(fib))
    first = list(range(0, 256, 2))
    second = list(range(1, 256, 2))
    reused = []
    got = plan.lookup_batch(first, out=reused)
    assert got is reused and len(reused) == len(first)
    got = plan.lookup_batch(second, out=reused)
    # The second batch must replace — not extend — the reused list.
    assert got is reused and len(reused) == len(second)
    assert reused == [fib.lookup(a) for a in second]


# ---------------------------------------------------------------------------
# Snapshot isolation: plans freeze their tables at compile time
# ---------------------------------------------------------------------------


class TestSnapshotIsolation:
    def test_sail_bitmap_and_sram_mutation(self):
        fib = small_v4_fib()
        algo = Sail(fib)
        plan = compile_plan(algo)
        vplan = compile_vector_plan(algo, plan=plan)
        addr = 0x0A020304  # 10.2.3.4 -> /8, hop 1
        assert vplan.lookup(addr) == 1
        # Mutate the live structure (bitmaps + hop arrays + chunks).
        algo.insert(Prefix.from_bits(0x0A02, 16, 32), 7)
        algo.insert(Prefix.from_bits(addr >> 4, 28, 32), 8)
        assert algo.lookup(addr) == 8          # native sees the update
        assert plan.lookup(addr) == 1          # scalar snapshot is stale
        assert vplan.lookup(addr) == 1         # vector snapshot is stale
        assert compile_vector_plan(algo).lookup(addr) == 8

    def test_tcam_mutation(self):
        fib = small_v8_fib()
        algo = LogicalTcam(fib)
        vplan = compile_vector_plan(algo)
        addr = 0b10110001
        assert vplan.lookup(addr) == 1  # /1 match
        algo.insert(Prefix.from_bits(0b1011, 4, 8), 9)
        assert algo.lookup(addr) == 9
        assert vplan.lookup(addr) == 1  # frozen TCAM matrices
        assert compile_vector_plan(algo).lookup(addr) == 9

    def test_delete_is_also_invisible_until_recompile(self):
        fib = small_v8_fib()
        algo = LogicalTcam(fib)
        vplan = compile_vector_plan(algo)
        addr = 0b10100000
        assert vplan.lookup(addr) == 2
        algo.delete(Prefix.from_bits(0b1010, 4, 8))
        assert algo.lookup(addr) == 1
        assert vplan.lookup(addr) == 2
        assert compile_vector_plan(algo).lookup(addr) == 1


# ---------------------------------------------------------------------------
# The vector plan: sentinels, chunking, delegation, lowering errors
# ---------------------------------------------------------------------------


class TestVectorPlan:
    def test_miss_sentinel_and_hops_conversion(self):
        fib = Fib(8)
        fib.insert(Prefix.from_bits(0b1, 1, 8), 5)
        vplan = compile_vector_plan(MultibitTrie(fib, [4, 4]))
        hops = vplan.lookup_batch([0b10000000, 0b00000001])
        assert hops.dtype == np.int64
        assert hops.tolist() == [5, MISS_HOP]
        assert vplan.lookup_batch_hops([0b10000000, 0b00000001]) == [5, None]
        assert vplan.lookup(0b00000001) is None

    def test_chunked_execution_matches_unchunked(self):
        fib = small_v8_fib()
        algo = MultibitTrie(fib, [4, 4])
        whole = compile_vector_plan(algo)
        tiny = compile_vector_plan(algo, chunk=7)
        addresses = list(range(256))
        assert tiny.lookup_batch_hops(addresses) == \
            whole.lookup_batch_hops(addresses)

    def test_wide_addresses_delegate_to_scalar_plan(self):
        fib = Fib(64)
        fib.insert(Prefix.from_bits(0b1, 1, 64), 3)
        vplan = compile_vector_plan(LogicalTcam(fib))
        assert not vplan.fully_lowered  # 64-bit lanes cannot enter SoA
        addresses = [1 << 63, (1 << 63) | 5, 17]
        assert vplan.lookup_batch_hops(addresses) == [3, 3, None]

    def test_mixed_mode_reports_bridged_steps(self):
        fib = small_v8_fib()
        vplan = compile_vector_plan(BridgedTcam(fib))
        info = vplan.describe()
        assert not info["fully_lowered"]
        assert info["bridged_steps"]  # the match step runs over the bridge
        assert 0.0 <= info["lowered_fraction"] <= 1.0
        assert info["kernel_sequence"] == [
            {"steps": ["match"], "mode": "bridge", "fused": False}]

    def test_bridge_exception_fails_batch_with_typed_error(self):
        # A raising bridged step must abort the whole batch: before the
        # typed error, lanes were left holding the MISS sentinel,
        # indistinguishable from a genuine no-route answer.
        class ExplodingTcam(BridgedTcam):
            def cram_program(self):
                prog = super().cram_program()

                def boom(state, result):
                    if state["addr"] == 0b1010_0001:
                        raise RuntimeError("table wedged")
                    state["hop"] = result

                prog.step("match").action = boom
                return prog

        vplan = compile_vector_plan(ExplodingTcam(small_v8_fib()))
        assert vplan.bridged_steps == ("match",)
        with pytest.raises(VectorBridgeError, match=r"'match'.*lane 1"):
            vplan.lookup_batch([0b1010_0000, 0b1010_0001, 0b1010_0010])
        # VectorBridgeError is a VectorError, so existing handlers see it.
        assert issubclass(VectorBridgeError, VectorError)

    def test_unknown_spec_names_raise(self):
        class BadTcam(LogicalTcam):
            def vector_specs(self):
                return {"no_such_step": VectorStepSpec(
                    lambda lanes, vals, found, active: None)}

        with pytest.raises(VectorError, match="unknown steps"):
            compile_vector_plan(BadTcam(small_v8_fib()))

    def test_bad_chunk_rejected(self):
        with pytest.raises(VectorError):
            compile_vector_plan(LogicalTcam(small_v8_fib()), chunk=0)


# ---------------------------------------------------------------------------
# Property tests: None-lane masking against the trie oracle
# ---------------------------------------------------------------------------


prefix_lists = st.lists(
    st.tuples(st.integers(min_value=1, max_value=8),   # length
              st.integers(min_value=0, max_value=255),  # raw bits
              st.integers(min_value=0, max_value=31)),  # hop
    min_size=0, max_size=24)


@settings(max_examples=40, deadline=None)
@given(prefix_lists)
def test_multibit_vector_masks_match_oracle(entries):
    fib = Fib(8)
    for length, bits, hop in entries:
        fib.insert(Prefix.from_bits(bits & ((1 << length) - 1), length, 8),
                   hop)
    vplan = compile_vector_plan(MultibitTrie(fib, [4, 4]))
    addresses = list(range(256))
    raw = vplan.lookup_batch(addresses)
    for address, value in zip(addresses, raw.tolist()):
        expected = fib.lookup(address)
        if expected is None:  # no-route lanes carry the sentinel...
            assert value == MISS_HOP
        else:                 # ...and routed lanes the exact hop
            assert value == expected


@settings(max_examples=25, deadline=None)
@given(prefix_lists)
def test_bridged_vector_masks_match_oracle(entries):
    fib = Fib(8)
    for length, bits, hop in entries:
        fib.insert(Prefix.from_bits(bits & ((1 << length) - 1), length, 8),
                   hop)
    vplan = compile_vector_plan(BridgedTcam(fib))  # forced scalar bridge
    addresses = list(range(256))
    assert vplan.lookup_batch_hops(addresses) == \
        [fib.lookup(a) for a in addresses]


# ---------------------------------------------------------------------------
# The fusion pass
# ---------------------------------------------------------------------------


class TestFusion:
    def test_fusion_collapses_adjacent_lowered_steps(self):
        fib = small_v8_fib()
        algo = MultibitTrie(fib, [4, 4])
        fused = compile_vector_plan(algo)
        unfused = compile_vector_plan(algo, fuse=False)
        assert fused.fuse and not unfused.fuse
        # All steps lowered and adjacent: one fused kernel dispatch.
        assert len(fused) == 1 < len(unfused)
        assert fused.fused_groups == (fused.lowered_steps,)
        assert fused.fused_steps == len(fused.lowered_steps)
        assert unfused.fused_groups == () and unfused.fused_steps == 0
        addresses = list(range(256))
        assert fused.lookup_batch_hops(addresses) == \
            unfused.lookup_batch_hops(addresses)

    def test_bridge_segments_are_fusion_barriers(self):
        vplan = compile_vector_plan(BridgedTcam(small_v8_fib()))
        # A single bridged step: nothing to fuse around it.
        assert vplan.fused_groups == ()
        assert [e["mode"] for e in vplan.kernel_sequence()] == ["bridge"]

    def test_single_step_plans_report_no_fusion(self):
        vplan = compile_vector_plan(LogicalTcam(small_v8_fib()))
        assert vplan.fully_lowered
        assert vplan.fused_steps == 0  # one kernel: no group to merge
        assert vplan.kernel_sequence() == [
            {"steps": ["match"], "mode": "vector", "fused": False}]

    def test_engine_fuse_knob_and_gauge(self):
        fib = small_v8_fib()
        engine = BatchEngine(MultibitTrie(fib, [4, 4]), backend="vector",
                             name="fusion")
        gauge = engine.registry.gauge("repro_engine_vector_fused_steps")
        assert gauge.value(engine="fusion") == \
            engine.vector_plan.fused_steps > 0
        off = BatchEngine(MultibitTrie(fib, [4, 4]), backend="vector",
                          name="nofuse", fuse=False)
        assert off.vector_plan.fused_steps == 0
        assert off.registry.gauge(
            "repro_engine_vector_fused_steps").value(engine="nofuse") == 0
        addresses = list(range(256))
        assert engine.lookup_batch(addresses) == \
            off.lookup_batch(addresses)


# ---------------------------------------------------------------------------
# The engine's backend knob
# ---------------------------------------------------------------------------


class TestEngineBackend:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            BatchEngine(LogicalTcam(small_v8_fib()), backend="simd")

    def test_backend_gauge_and_auto_fallback(self):
        fib = small_v8_fib()
        vec = BatchEngine(MultibitTrie(fib, [4, 4]), backend="vector",
                          name="vec")
        assert vec.active_backend == "vector"
        gauge = vec.registry.gauge("repro_engine_backend")
        assert gauge.value(engine="vec", backend="vector") == 1
        assert gauge.value(engine="vec", backend="plan") == 0
        # auto drops to the scalar plan when steps bridged...
        auto = BatchEngine(BridgedTcam(fib), backend="auto", name="auto")
        assert auto.active_backend == "plan"
        assert auto.vector_plan is not None
        # ...while a fully-lowered tree scheme stays on vector...
        tree = BatchEngine(HiBst(fib), backend="auto", name="tree")
        assert tree.active_backend == "vector"
        # ...and the bridged one still serves correct answers if forced.
        forced = BatchEngine(BridgedTcam(fib), backend="vector")
        addresses = list(range(256))
        assert forced.lookup_batch(addresses) == \
            [fib.lookup(a) for a in addresses]

    def test_lowering_gauges_published(self):
        fib = small_v8_fib()
        engine = BatchEngine(MultibitTrie(fib, [4, 4]), backend="vector",
                             name="low")
        reg = engine.registry
        lowered = reg.gauge("repro_engine_vector_lowered_steps")
        bridged = reg.gauge("repro_engine_vector_bridged_steps")
        assert lowered.value(engine="low") == \
            len(engine.vector_plan.lowered_steps)
        assert bridged.value(engine="low") == 0

    def test_commit_recompiles_vector_plan(self):
        base = small_v8_fib()
        managed = ManagedFib(lambda fib: LogicalTcam(fib), base)
        engine = BatchEngine.over_managed(managed, cache_size=16,
                                          backend="vector", name="churned")
        addresses = list(range(256))
        engine.lookup_batch(addresses)  # warm the cache pre-churn
        before = engine.vector_plan
        landed = 0
        for batch in ChurnGenerator(base, seed=3).batches(10, 5):
            if managed.apply_batch(batch) != "batch_rolled_back":
                landed += 1
        assert landed > 0
        assert engine.vector_plan is not before  # recompiled on commit
        oracle = managed.oracle
        assert engine.lookup_batch(addresses) == \
            [oracle.lookup(a) for a in addresses]
