"""Unit tests for the logical TCAM baseline."""

import pytest

from repro.algorithms import LogicalTcam, logical_tcam_capacity, logical_tcam_layout
from repro.chip import map_to_ideal_rmt
from repro.prefix import from_bitstring, parse_prefix

P = parse_prefix


class TestLookup:
    def test_exhaustive_on_example(self, example_fib):
        ltcam = LogicalTcam(example_fib)
        for addr in range(256):
            assert ltcam.lookup(addr) == example_fib.lookup(addr), addr

    def test_matches_oracle(self, ipv4_fib, ipv4_addresses):
        ltcam = LogicalTcam(ipv4_fib)
        for addr in ipv4_addresses[:500]:
            assert ltcam.lookup(addr) == ipv4_fib.lookup(addr)

    def test_insert_delete(self, example_fib):
        ltcam = LogicalTcam(example_fib)
        ltcam.insert(from_bitstring("1111", 8), 7)
        assert ltcam.lookup(0b11110000) == 7
        ltcam.delete(from_bitstring("1111", 8))
        assert ltcam.lookup(0b11110000) is None

    def test_cram_program_equivalence(self, example_fib):
        ltcam = LogicalTcam(example_fib)
        for addr in range(0, 256, 5):
            assert ltcam.cram_lookup(addr) == ltcam.lookup(addr)

    def test_single_step(self, example_fib):
        assert LogicalTcam(example_fib).cram_metrics().steps == 1


class TestCapacity:
    def test_paper_capacities(self):
        # §6.5.2/§6.5.3: 245,760 IPv4 entries, 122,880 IPv6 entries.
        assert logical_tcam_capacity(32) == 245_760
        assert logical_tcam_capacity(64) == 122_880

    def test_current_tables_do_not_fit(self):
        # The paper's headline: today's BGP tables overflow pure TCAM.
        v4 = map_to_ideal_rmt(logical_tcam_layout(930_000, 32))
        assert not v4.feasible
        assert v4.stages > 70  # paper: 76
        v6 = map_to_ideal_rmt(logical_tcam_layout(190_000, 64))
        assert not v6.feasible
        assert v6.stages > 28  # paper: 32

    def test_capacity_boundary_is_feasible(self):
        at_cap = map_to_ideal_rmt(logical_tcam_layout(245_760, 32))
        assert at_cap.tcam_blocks == 480
        over = map_to_ideal_rmt(logical_tcam_layout(245_761, 32))
        assert not over.feasible
