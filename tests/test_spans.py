"""Request-lifecycle span tests (:mod:`repro.obs.spans` + the server).

The unit half exercises the recorder in isolation (deterministic IDs,
sampling boundaries, exports); the integration half drives a real
:class:`~repro.server.LookupServer` — thread and process mode, fake
and real clock — and asserts the acceptance properties: every
completed request leaves an end-to-end trace, worker deaths surface as
``retry`` marker spans (never a dangling open span), and the
span-derived request-latency histogram agrees with the
``repro_server_request`` registry timer bit-for-bit at sample rate 1.
"""

import json
import random
import threading

import pytest

from repro.algorithms.hibst import HiBst
from repro.chaos import ChaosPlan
from repro.control import ManagedFib
from repro.obs import FakeClock, MetricsRegistry, validate_chrome_trace
from repro.obs.spans import (
    DEFAULT_SPAN_SAMPLE_RATE,
    SPAN_PHASES,
    SpanRecorder,
    batch_trace_id_for,
    check_span_metrics_consistency,
    span_sampled,
    trace_id_for,
)
from repro.prefix.prefix import Prefix
from repro.prefix.trie import Fib
from repro.server import (
    LookupServer,
    RequestShed,
    RequestTimeout,
    RestartPolicy,
    ServingState,
    WorkerCrash,
)

WIDTH = 8


def small_fib(seed=3, size=40):
    rng = random.Random(seed)
    fib = Fib(WIDTH)
    while len(fib) < size:
        length = rng.randint(1, WIDTH)
        fib.insert(Prefix.from_bits(rng.getrandbits(length), length, WIDTH),
                   rng.randint(1, 99))
    return fib


# ---------------------------------------------------------------------------
# Sampling + IDs
# ---------------------------------------------------------------------------


class TestSampling:
    def test_rate_zero_samples_nothing(self):
        assert not any(span_sampled(seq, 0.0) for seq in range(1000))

    def test_rate_one_samples_everything(self):
        assert all(span_sampled(seq, 1.0) for seq in range(1000))

    def test_decision_is_deterministic(self):
        got = [span_sampled(seq, 0.25, seed=7) for seq in range(500)]
        again = [span_sampled(seq, 0.25, seed=7) for seq in range(500)]
        assert got == again

    def test_seed_changes_the_picked_set(self):
        a = {s for s in range(2000) if span_sampled(s, 0.25, seed=1)}
        b = {s for s in range(2000) if span_sampled(s, 0.25, seed=2)}
        assert a != b

    def test_rate_is_roughly_honoured(self):
        hits = sum(span_sampled(seq, 0.25) for seq in range(10_000))
        assert 0.20 < hits / 10_000 < 0.30

    def test_trace_ids_are_pure_functions(self):
        assert trace_id_for(7, epoch=2) == "req-0002-000000000007"
        assert batch_trace_id_for(7, epoch=2) == "bat-0002-000000000007"
        assert trace_id_for(7, 2) != trace_id_for(7, 3)

    def test_default_rate_is_one_in_sixteen(self):
        assert DEFAULT_SPAN_SAMPLE_RATE == pytest.approx(1 / 16)


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------


class TestSpanRecorder:
    def test_record_and_query(self):
        rec = SpanRecorder(sample_rate=1.0)
        rec.record("t1", "request", 1.0, 2.5, seq=1)
        rec.record("t1", "execute", 1.5, 2.0, seq=1)
        assert len(rec) == 2
        assert [s.name for s in rec.spans("request")] == ["request"]
        assert rec.counts() == {"execute": 1, "request": 1}
        assert rec.spans("request")[0].dur_s == pytest.approx(1.5)

    def test_negative_duration_is_clamped(self):
        rec = SpanRecorder()
        span = rec.record("t", "request", 5.0, 4.0)
        assert span.end_s == span.start_s
        assert span.dur_s == 0.0

    def test_capacity_is_a_ring(self):
        rec = SpanRecorder(capacity=3)
        for i in range(5):
            rec.record("t", "request", float(i), float(i) + 0.5, seq=i)
        assert len(rec) == 3
        assert [s.attrs["seq"] for s in rec.spans()] == [2, 3, 4]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)
        with pytest.raises(ValueError):
            SpanRecorder(sample_rate=1.5)

    def test_registry_counters_track_spans_and_sampling(self):
        registry = MetricsRegistry()
        rec = SpanRecorder(sample_rate=1.0, registry=registry, server="s")
        rec.sampled(1)
        rec.record("t", "request", 0.0, 1.0)
        counters = registry.snapshot()["counters"]
        assert counters["repro_server_spans_total"][
            '{phase="request",server="s"}'] == 1
        assert counters["repro_server_span_requests_sampled_total"][
            '{server="s"}'] == 1

    def test_jsonl_roundtrip(self):
        rec = SpanRecorder()
        rec.record("t1", "request", 1.0, 2.0, seq=4, outcome="ok")
        rec.event("t1", "retry", 1.5, worker=0)
        lines = rec.to_jsonl().strip().split("\n")
        docs = [json.loads(line) for line in lines]
        assert [d["name"] for d in docs] == ["request", "retry"]
        assert docs[0]["attrs"]["outcome"] == "ok"
        assert docs[1]["dur_s"] == 0.0

    def test_chrome_trace_validates_and_lanes(self):
        rec = SpanRecorder()
        rec.record("req-0000-1", "request", 1.0, 2.0, seq=1)
        rec.record("bat-0000-1", "execute", 1.2, 1.8, worker=2, batch=1)
        rec.event("req-0000-1", "timeout", 2.0, seq=1)
        events = rec.to_chrome_trace()
        validate_chrome_trace(events)  # also validated internally
        by_name = {e["name"]: e for e in events}
        assert by_name["request"]["pid"] == 0
        assert by_name["request"]["tid"] == 1
        assert by_name["execute"]["pid"] == 3  # 1 + worker
        assert by_name["execute"]["tid"] == 1  # batch seq
        assert by_name["timeout"]["ph"] == "i"
        assert by_name["request"]["ph"] == "X"

    def test_consistency_check_flags_divergence(self):
        registry = MetricsRegistry()
        rec = SpanRecorder()
        registry.observe_seconds("repro_server_request", 0.25, server="s")
        rec.record("t", "request", 0.0, 0.25)
        ok = check_span_metrics_consistency(rec, registry, server="s")
        assert ok["ok"], ok["mismatches"]
        rec.record("t2", "request", 0.0, 9.0)  # span the timer never saw
        bad = check_span_metrics_consistency(rec, registry, server="s")
        assert not bad["ok"]
        assert any("count" in m for m in bad["mismatches"])

    def test_consistency_check_reports_missing_timer(self):
        report = check_span_metrics_consistency(
            SpanRecorder(), MetricsRegistry(), server="nope")
        assert not report["ok"]


# ---------------------------------------------------------------------------
# Server integration
# ---------------------------------------------------------------------------


class TestServerSpans:
    def _serve(self, *, sample_rate, requests=64, workers=2,
               registry=None, clock=None):
        fib = small_fib()
        registry = registry if registry is not None else MetricsRegistry()
        server = LookupServer(HiBst(fib), workers=workers, max_batch=8,
                              max_wait_s=0.001, registry=registry,
                              clock=clock, sample_rate=sample_rate)
        with server:
            handles = [server.submit([a % 256]) for a in range(requests)]
            server.flush()
            for handle in handles:
                handle.result(timeout=30)
        return server, registry

    def test_full_trace_at_rate_one(self):
        server, registry = self._serve(sample_rate=1.0, clock=FakeClock())
        counts = server.spans.counts()
        # Every completed request left a root span; every dispatched
        # batch left the full phase decomposition.
        assert counts["request"] == 64
        batches = counts["coalesce"]
        assert batches >= 1
        for phase in ("queue_wait", "gate", "execute", "scatter"):
            assert counts[phase] == batches
        report = check_span_metrics_consistency(server.spans, registry)
        assert report["ok"], report["mismatches"]
        assert report["spans"]["count"] == 64

    def test_consistency_holds_on_the_wall_clock_too(self):
        server, registry = self._serve(sample_rate=1.0)
        report = check_span_metrics_consistency(server.spans, registry)
        assert report["ok"], report["mismatches"]

    def test_rate_zero_records_no_spans(self):
        server, registry = self._serve(sample_rate=0.0, clock=FakeClock())
        assert len(server.spans) == 0
        counters = registry.snapshot()["counters"]
        assert sum(counters[
            "repro_server_span_requests_unsampled_total"].values()) == 64
        assert sum(counters[
            "repro_server_span_requests_sampled_total"].values()) == 0
        # SLO accounting observed every request regardless.
        assert server.slo.report()["phases"]["request"]["observed"] == 64

    def test_chrome_export_covers_every_request(self):
        server, _ = self._serve(sample_rate=1.0, clock=FakeClock())
        events = server.spans.to_chrome_trace()
        request_lanes = {e["tid"] for e in events
                         if e["name"] == "request" and e["pid"] == 0}
        assert len(request_lanes) == 64

    def test_timeout_leaves_an_outcome_event_not_a_request_span(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        server = LookupServer(HiBst(small_fib()), workers=1, clock=clock,
                              registry=registry, request_deadline_s=0.5,
                              max_wait_s=10.0, sample_rate=1.0)
        with server:
            handle = server.submit([1, 2, 3])
            clock.advance(1.0)
            with pytest.raises(RequestTimeout):
                handle.result(0)
            events = server.spans.spans("timeout")
            assert len(events) == 1
            assert events[0].attrs["seq"] == handle.seq
            assert events[0].dur_s == 0.0
            assert server.spans.spans("request") == []
        # The timer never observed the timed-out request either, so
        # the consistency contract survives failures.
        report = check_span_metrics_consistency(server.spans, registry)
        assert report["spans"]["count"] == 0

    def test_pool_refusal_sheds_with_event_spans(self):
        clock = FakeClock()
        server = LookupServer(HiBst(small_fib()), workers=1, clock=clock,
                              max_wait_s=10.0, sample_rate=1.0)
        with server:
            server._pool.submit = lambda batch: False
            handle = server.submit([1])
            server.flush()
            sheds = server.spans.spans("shed")
            assert len(sheds) == 1
            assert sheds[0].attrs["reason"] == "pool_refused"
            assert sheds[0].attrs["seq"] == handle.seq

    def test_brownout_hit_records_request_span_and_event(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        server = LookupServer(HiBst(small_fib()), workers=1, clock=clock,
                              registry=registry, sample_rate=1.0)
        with server:
            warm = server.lookup_batch([5, 6], timeout=30)
            for _ in range(4):
                server.health.note_restart()
            assert server.health_state is ServingState.BROWNOUT
            hit = server.submit([5, 6])
            assert hit.result(0) == warm
            roots = [s for s in server.spans.spans("request")
                     if s.attrs.get("outcome") == "brownout_hit"]
            assert len(roots) == 1
            assert roots[0].attrs["seq"] == hit.seq
            assert len(server.spans.spans("brownout_hit")) == 1
            # Cache miss in brownout: shed, marked but never opened.
            miss = server.submit([250])
            with pytest.raises(RequestShed):
                miss.result(0)
            assert len(server.spans.spans("brownout_shed")) == 1
        # Brownout hits observe the request timer too — counts agree.
        report = check_span_metrics_consistency(server.spans, registry)
        assert report["ok"], report["mismatches"]

    def test_thread_worker_crash_emits_retry_span(self):
        fib = small_fib()
        server = LookupServer(
            HiBst(fib), workers=1, sample_rate=1.0,
            restart_policy=RestartPolicy(base_backoff_s=0.005,
                                         max_backoff_s=0.01, budget=5,
                                         jitter=0.0))
        crashed = threading.Event()
        engine = server.engines()[0]
        real = engine.lookup_batch

        def sabotage(addresses):
            if not crashed.is_set():
                crashed.set()
                raise WorkerCrash("induced")
            return real(addresses)

        engine.lookup_batch = sabotage
        with server:
            hops = server.lookup_batch([1, 2, 3], timeout=30)
            assert hops == [fib.lookup(a) for a in (1, 2, 3)]
        retries = server.spans.spans("retry")
        assert len(retries) == 1
        assert retries[0].attrs["retries"] == 1
        # The re-queued batch completed: its phase spans carry the
        # retry count, and the request root closed normally.
        executes = server.spans.spans("execute")
        assert any(s.attrs["retries"] == 1 for s in executes)
        roots = server.spans.spans("request")
        assert len(roots) == 1 and roots[0].attrs["outcome"] == "ok"

    def test_process_mode_ships_spans_across_a_kill(self):
        fib = small_fib(seed=13, size=25)
        managed = ManagedFib(lambda f: HiBst(f), fib)
        plan = ChaosPlan(injectors=[], script=[("kill", 0, 1)])
        registry = MetricsRegistry()
        server = LookupServer(
            managed=managed, workers=2, mode="process", max_batch=16,
            max_wait_s=0.001, registry=registry, sample_rate=1.0,
            chaos=plan,
            restart_policy=RestartPolicy(base_backoff_s=0.005,
                                         max_backoff_s=0.02, budget=8,
                                         jitter=0.0))
        with server:
            addresses = list(range(0, 192, 3))
            handles = [server.submit(addresses[i:i + 4])
                       for i in range(0, len(addresses), 4)]
            server.flush()
            for handle in handles:
                handle.result(timeout=60)
        assert server.supervisor.deaths >= 1
        # The killed batch resurfaced as a retry marker + a completed
        # execute span with the bumped retry count — never a dangling
        # open span (spans are only ever recorded closed).
        retries = server.spans.spans("retry")
        assert len(retries) >= 1
        assert any(s.attrs["retries"] >= 1
                   for s in server.spans.spans("execute"))
        roots = server.spans.spans("request")
        assert len(roots) == len(handles)
        report = check_span_metrics_consistency(server.spans, registry)
        assert report["ok"], report["mismatches"]

    def test_error_outcome_spans(self):
        fib = small_fib()
        server = LookupServer(HiBst(fib), workers=1, max_wait_s=10.0,
                              sample_rate=1.0, supervise=False)
        engine = server.engines()[0]

        def explode(addresses):
            raise RuntimeError("engine fault")

        engine.lookup_batch = explode
        with server:
            handle = server.submit([1])
            server.flush()
            with pytest.raises(Exception):
                handle.result(timeout=30)
            errors = server.spans.spans("error")
            assert len(errors) == 1
            assert errors[0].attrs["error"] == "RuntimeError"

    def test_span_phases_constant_matches_the_server(self):
        server, _ = self._serve(sample_rate=1.0, clock=FakeClock())
        assert set(server.spans.counts()) <= set(SPAN_PHASES)
