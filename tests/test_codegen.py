"""Unit tests for P4-sketch generation."""

import pytest

from repro.algorithms import LogicalTcam, Resail
from repro.core import (
    Bin,
    Const,
    CramProgram,
    Reg,
    Statement,
    Step,
    estimate_p4_effort,
    generate_p4_sketch,
    exact_table,
    ternary_table,
)


def small_program():
    prog = CramProgram("demo prog", registers=["addr", "color"])
    table = ternary_table("my table!", 32, 10, 8,
                          key_selector=lambda s: s["addr"])
    prog.add_step(Step("classify", table=table, reads=["addr"],
                       statements=[Statement("color", Const(1),
                                             cond=Bin(">", Reg("addr"), Const(0)))]))
    return prog


class TestSketch:
    def test_contains_table_decl(self):
        sketch = generate_p4_sketch(small_program())
        assert "table my_table_ {" in sketch
        assert "ternary" in sketch
        assert "size = 10;" in sketch
        assert "#include <core.p4>" in sketch

    def test_statement_rendering(self):
        sketch = generate_p4_sketch(small_program())
        assert "if ((meta.addr > 0)) { meta.color = 1; }" in sketch

    def test_metadata_fields(self):
        sketch = generate_p4_sketch(small_program())
        assert "bit<64> addr;" in sketch
        assert "bit<32> my_table__key;" in sketch

    def test_waves_follow_dependencies(self):
        prog = small_program()
        prog.add_step(Step("after", reads=["color"], writes=["addr"],
                           statements=[Statement("addr", Reg("color"))]),
                      after=["classify"])
        sketch = generate_p4_sketch(prog)
        assert sketch.index("wave 1") < sketch.index("wave 2")

    def test_opaque_actions_marked_todo(self, example_fib):
        sketch = generate_p4_sketch(LogicalTcam(example_fib).cram_program())
        assert "TODO(engineer): opaque action" in sketch

    def test_sketch_for_real_algorithm(self, ipv4_fib):
        resail = Resail(ipv4_fib)
        sketch = generate_p4_sketch(resail.cram_program())
        # Every bitmap and the hash table appear as tables.
        for i in range(13, 25):
            assert f"table b{i} " in sketch
        assert "next_hop_hash" in sketch
        assert "look_aside" in sketch

    def test_shared_table_declared_once(self, ipv4_fib):
        from repro.algorithms import Dxr

        sketch = generate_p4_sketch(Dxr(ipv4_fib, k=16).cram_program())
        assert sketch.count("table ranges {") == 1


class TestEffort:
    def test_effort_summary(self, example_fib):
        prog = LogicalTcam(example_fib).cram_program()
        effort = estimate_p4_effort(prog)
        assert effort["tables"] == 1
        assert effort["steps"] == 1
        assert effort["todo_opaque_actions"] == 1
