"""Reproduction of the paper's worked examples (Tables 1, 2, 3, 13; Fig. 12).

These tests pin this implementation to the exact micro-examples the
paper walks through, so a reader can line the code up with the text.
"""

import pytest

from repro.algorithms import Bsic, Resail, bit_mark
from repro.datasets import small_example_fib
from repro.prefix import expand_to_ranges, from_bitstring, ranges_to_bst

HOPS = {"A": 0, "B": 1, "C": 2, "D": 3}


class TestTable1:
    """The example routing table: 8 entries over 8-bit addresses."""

    def test_contents(self, example_fib):
        want = {
            "010100": "A", "011": "B", "100100": "C", "100101": "D",
            "10010100": "A", "10011010": "B", "10011011": "C", "10100011": "A",
        }
        got = {  # render back to the paper's notation
            format(p.bits, f"0{p.length}b"): hop for p, hop in example_fib
        }
        assert got == {bits: HOPS[h] for bits, h in want.items()}


class TestTable2:
    """RESAIL's hash table with pivot level 6 and 7-bit marked keys.

    Entries 1-4 of Table 1 are within the pivot; entries 5-8 are longer
    and live in the look-aside TCAM.  The paper's worked key: 011 ->
    0111000.
    """

    def test_bit_marked_keys(self):
        # Keys from the paper's Table 2 (pivot level 6 -> 7-bit keys).
        assert bit_mark(0b100100, 6, pivot=6) == 0b1001001
        assert bit_mark(0b010100, 6, pivot=6) == 0b0101001
        assert bit_mark(0b011, 3, pivot=6) == 0b0111000
        assert bit_mark(0b100101, 6, pivot=6) == 0b1001011

    def test_keys_are_distinct(self):
        keys = {
            bit_mark(0b100100, 6, pivot=6),
            bit_mark(0b010100, 6, pivot=6),
            bit_mark(0b011, 3, pivot=6),
            bit_mark(0b100101, 6, pivot=6),
        }
        assert len(keys) == 4


class TestTable3:
    """BSIC's initial lookup table for Table 1 with k=4."""

    def test_slices_and_values(self, example_fib):
        bsic = Bsic(example_fib, k=4)
        rows = {}
        for e in bsic.initial.entries():
            key_bits = format(e.value, "04b")
            wild = 4 - bin(e.mask).count("1")
            rows[key_bits[: 4 - wild] + "*" * wild] = e.data
        assert rows["011*"] == ("hop", HOPS["B"])
        assert rows["0101"][0] == "bst"
        assert rows["1001"][0] == "bst"
        assert rows["1010"][0] == "bst"
        assert len(rows) == 4

    def test_bst2_entries(self, example_fib):
        """Slice 1001 condenses entries 3-7 into one pointer (BST 2)."""
        bsic = Bsic(example_fib, k=4)
        group = bsic._groups[0b1001]
        suffixes = {format(p.bits, f"0{p.length}b") for p, _h in group}
        assert suffixes == {"00", "01", "0100", "1010", "1011"}


class TestTable13AndFigure12:
    """Range expansion and the BST for slice 1001 (Appendix A.4)."""

    def entries(self):
        return [
            (from_bitstring("00", 4), HOPS["C"]),
            (from_bitstring("01", 4), HOPS["D"]),
            (from_bitstring("0100", 4), HOPS["A"]),
            (from_bitstring("1010", 4), HOPS["B"]),
            (from_bitstring("1011", 4), HOPS["C"]),
        ]

    def test_seven_intervals_with_inherited_defaults(self):
        table = expand_to_ranges(self.entries(), 4, default_hop=None)
        assert [(r.left, r.next_hop) for r in table] == [
            (0b0000, HOPS["C"]), (0b0100, HOPS["A"]), (0b0101, HOPS["D"]),
            (0b1000, None), (0b1010, HOPS["B"]), (0b1011, HOPS["C"]),
            (0b1100, None),
        ]

    def test_bst_root_and_depth(self):
        bst = ranges_to_bst(expand_to_ranges(self.entries(), 4))
        assert bst.left_endpoint == 0b1000  # Figure 12's root
        assert bst.depth() == 3

    def test_all_algorithms_agree_on_table1(self, example_fib):
        """End-to-end: the worked example routes identically everywhere."""
        from repro.algorithms import Dxr, HiBst, LogicalTcam, Mashup, MultibitTrie

        algos = [
            Bsic(example_fib, k=4),
            Dxr(example_fib, k=4),
            MultibitTrie(example_fib, [2, 1, 2, 3]),
            Mashup(example_fib, [2, 1, 2, 3]),
            HiBst(example_fib),
            LogicalTcam(example_fib),
        ]
        for addr in range(256):
            want = example_fib.lookup(addr)
            for algo in algos:
                assert algo.lookup(addr) == want, (algo.name, addr)
