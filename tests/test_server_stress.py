"""Soak tests: linearizable serving under concurrent churn and reloads.

N producer threads hammer a :class:`~repro.server.LookupServer` while
the main thread drives managed churn through a scripted capacity guard
that forces a seeded ~35% of batches to *roll back* — interleaving
landed commits with genuine rollbacks.  The harness records, at every
landed commit, the oracle's answer for all 256 toy addresses keyed by
the serving epoch; afterwards every request is checked against the
snapshot of the epoch its batch executed under.

Proved properties:

  * **zero lost or duplicated responses** — every accepted request
    resolves exactly once (``deliveries == 1``: request size divides
    ``max_batch``, so no request straddles batches);
  * **zero stale or torn reads** — every answer equals the trie
    oracle's answer *at that request's serving epoch*: a batch never
    observes a half-applied or rolled-back update;
  * **rollbacks leave serving untouched** — the epoch does not move on
    a rolled-back batch and subsequent answers still match the last
    landed table;
  * **clean drain** — close() answers everything accepted, the pool
    winds down, and later submits are refused.

Wall-clock is bounded by the suite-wide 120s timeout (pytest-timeout
in CI, the conftest SIGALRM shim offline).
"""

import random
import threading
import time

import pytest

from repro.algorithms.hibst import HiBst
from repro.artifact import ArtifactCatalog
from repro.control import ChurnGenerator, ManagedFib, RuntimePolicy
from repro.control.runtime import Health
from repro.prefix.prefix import Prefix
from repro.prefix.trie import Fib
from repro.server import LookupServer, ServerError

WIDTH = 8
PRODUCERS = 4
REQUESTS_PER_PRODUCER = 50
REQUEST_SIZE = 8     # divides MAX_BATCH: no request ever spans batches
MAX_BATCH = 64
CHURN_BATCHES = 40


class ScriptedGuard:
    """A capacity guard that hard-trips on a seeded ~35% of batches.

    ``ManagedFib`` inspects the *new* structure first and, on a trip,
    re-inspects the *committed* one to decide whether the guard clears
    on rollback — so the script answers "trip" once and then "fits"
    for the follow-up call, producing a genuine rolled-back batch with
    the runtime staying serviceable (no terminal FAILED).
    """

    def __init__(self, seed, rate=0.35):
        self._rng = random.Random(seed)
        self._rate = rate
        self._clear_next = False
        self.trips = 0

    def inspect(self, algo):
        if self._clear_next:
            self._clear_next = False
            return [], []  # the committed structure still fits
        if self._rng.random() < self._rate:
            self._clear_next = True
            self.trips += 1
            return [f"scripted capacity trip #{self.trips}"], []
        return [], []


def build_fib(seed=21, size=30):
    rng = random.Random(seed)
    fib = Fib(WIDTH)
    while len(fib) < size:
        length = rng.randint(1, WIDTH)
        fib.insert(Prefix.from_bits(rng.getrandbits(length), length, WIDTH),
                   rng.randint(1, 99))
    return fib


def oracle_answers(oracle):
    return [oracle.lookup(a) for a in range(1 << WIDTH)]


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_serving_is_linearizable_under_churn_and_rollbacks(mode):
    base = build_fib()
    guard = ScriptedGuard(seed=5)
    managed = ManagedFib(lambda fib: HiBst(fib), base, guard=guard,
                         policy=RuntimePolicy(check_every=4))
    workers = 3 if mode == "thread" else 2
    server = LookupServer(managed=managed, workers=workers, mode=mode,
                          max_batch=MAX_BATCH, max_wait_s=0.001)
    # Keyed by serving epoch; registered after the server's listener,
    # so the epoch is already bumped when a snapshot is taken.
    snapshots = {0: oracle_answers(managed.oracle)}

    def record(outcome, algo, touched):
        snapshots[server.epoch] = oracle_answers(managed.oracle)

    managed.add_commit_listener(record)

    produced = [[] for _ in range(PRODUCERS)]
    failures = []

    def produce(lane):
        rng = random.Random(100 + lane)
        try:
            for _ in range(REQUESTS_PER_PRODUCER):
                addresses = [rng.randrange(1 << WIDTH)
                             for _ in range(REQUEST_SIZE)]
                produced[lane].append((addresses,
                                       server.submit(addresses)))
        except BaseException as exc:  # noqa: BLE001 — surface in the test
            failures.append(exc)

    landed = rolled_back = 0
    with server:
        threads = [threading.Thread(target=produce, args=(lane,),
                                    name=f"producer-{lane}")
                   for lane in range(PRODUCERS)]
        for thread in threads:
            thread.start()
        generator = ChurnGenerator(base, seed=9)
        for _ in range(CHURN_BATCHES):
            epoch_before = server.epoch
            outcome = managed.apply_batch(list(generator.ops(4)))
            if outcome == "batch_rolled_back":
                rolled_back += 1
                # Rollback leaves the serving plan untouched.
                assert server.epoch == epoch_before
            else:
                landed += 1
                assert server.epoch == epoch_before + 1
        for thread in threads:
            thread.join()
        server.flush()

        assert not failures, failures
        assert managed.health is not Health.FAILED

        # The scripted guard really interleaved both outcomes.
        assert rolled_back >= 1, "guard script produced no rollbacks"
        assert landed >= 5, "churn produced too few landed commits"

        checked = 0
        for lane_requests in produced:
            assert len(lane_requests) == REQUESTS_PER_PRODUCER
            for addresses, handle in lane_requests:
                hops = handle.result(timeout=60)
                # Exactly one delivery: nothing lost, nothing duplicated.
                assert handle.deliveries == 1
                lo, hi = handle.epoch_span
                assert lo == hi, "request size divides max_batch"
                expected = snapshots[hi]
                for address, hop in zip(addresses, hops):
                    assert hop == expected[address], (
                        f"stale read at epoch {hi}: address {address} "
                        f"served {hop}, oracle said {expected[address]}")
                    checked += 1
        assert checked == PRODUCERS * REQUESTS_PER_PRODUCER * REQUEST_SIZE

    # Clean drain: everything answered, workers gone, submits refused.
    assert server.drained()
    with pytest.raises(ServerError):
        server.submit([1])


# ---------------------------------------------------------------------------
# Blue/green artifact reloads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["thread", "process"])
def test_blue_green_reload_is_linearizable_under_load(mode, tmp_path):
    """Producers hammer the server while the main thread flips between
    catalog artifact versions (with churn landed on each loaded base).

    Every request must answer exactly once, entirely within one epoch,
    and bit-exactly against the oracle *of that epoch* — a reload never
    loses, duplicates, tears or stales a read, and churn applied after
    a reload lands on the loaded base, not the pre-reload one.
    """
    versions = {}
    catalog = ArtifactCatalog(str(tmp_path))
    for seed in (21, 22, 23):
        fib = build_fib(seed=seed, size=30)
        versions[catalog.save("soak", HiBst(fib), fib)] = fib

    base = versions["v001"]
    managed = ManagedFib(lambda fib: HiBst(fib), base)
    workers = 3 if mode == "thread" else 2
    server = LookupServer(managed=managed, workers=workers, mode=mode,
                          max_batch=MAX_BATCH, max_wait_s=0.001)
    snapshots = {0: oracle_answers(managed.oracle)}

    def record(outcome, algo, touched):
        snapshots[server.epoch] = oracle_answers(managed.oracle)

    managed.add_commit_listener(record)

    produced = [[] for _ in range(PRODUCERS)]
    failures = []

    def produce(lane):
        rng = random.Random(300 + lane)
        try:
            for _ in range(REQUESTS_PER_PRODUCER):
                addresses = [rng.randrange(1 << WIDTH)
                             for _ in range(REQUEST_SIZE)]
                produced[lane].append((addresses,
                                       server.submit(addresses)))
        except BaseException as exc:  # noqa: BLE001 — surface in the test
            failures.append(exc)

    with server:
        threads = [threading.Thread(target=produce, args=(lane,),
                                    name=f"producer-{lane}")
                   for lane in range(PRODUCERS)]
        for thread in threads:
            thread.start()
        reloads = 0
        for cycle, version in enumerate(["v002", "v003", "v001", "v002"]):
            loaded = catalog.load("soak", version)
            epoch = server.reload_artifact(loaded)
            reloads += 1
            # reload_artifact does not re-fire commit listeners (it is
            # not a churn commit); record the flipped oracle manually.
            snapshots[epoch] = oracle_answers(managed.oracle)
            assert server.epoch == epoch
            # Churn lands on the *loaded* base — the managed runtime
            # adopted the artifact's FIB as its new oracle.
            generator = ChurnGenerator(managed.oracle, seed=40 + cycle)
            for _ in range(3):
                managed.apply_batch(list(generator.ops(4)))
        for thread in threads:
            thread.join()
        server.flush()

        assert not failures, failures
        assert managed.health is not Health.FAILED
        assert reloads == 4

        checked = 0
        for lane_requests in produced:
            assert len(lane_requests) == REQUESTS_PER_PRODUCER
            for addresses, handle in lane_requests:
                hops = handle.result(timeout=60)
                assert handle.deliveries == 1
                lo, hi = handle.epoch_span
                assert lo == hi, "request size divides max_batch"
                expected = snapshots[hi]
                for address, hop in zip(addresses, hops):
                    assert hop == expected[address], (
                        f"stale read at epoch {hi}: address {address} "
                        f"served {hop}, oracle said {expected[address]}")
                    checked += 1
        assert checked == PRODUCERS * REQUESTS_PER_PRODUCER * REQUEST_SIZE

    assert server.drained()
    counters = server.registry.snapshot()["counters"]
    commits = counters.get("repro_server_commits_total", {})
    assert sum(count for labels, count in commits.items()
               if "reload" in str(labels)) == 4


def test_worker_death_mid_reload_restarts_from_new_version(tmp_path):
    """Chaos: a process worker killed during a blue/green flip must be
    restarted from the NEW catalog version — the parent swaps its
    artifact path before shipping, so the re-fork can never resurrect
    the old table."""
    catalog = ArtifactCatalog(str(tmp_path))
    old_fib = build_fib(seed=31, size=30)
    new_fib = build_fib(seed=32, size=30)
    catalog.save("chaos", HiBst(old_fib), old_fib)           # v001
    catalog.save("chaos", HiBst(new_fib), new_fib)           # v002
    loaded_old = catalog.load("chaos", "v001")

    managed = ManagedFib(lambda fib: HiBst(fib), old_fib)
    server = LookupServer(managed=managed, workers=2, mode="process",
                          max_batch=MAX_BATCH, max_wait_s=0.001,
                          artifact=str(loaded_old.path))
    addresses = list(range(1 << WIDTH))
    with server:
        assert server.lookup_batch(addresses, timeout=60) == \
            [old_fib.lookup(a) for a in addresses]

        pool = server.pool
        reload_started = threading.Event()

        def assassin():
            reload_started.wait(timeout=30)
            time.sleep(0.002)  # land the SIGTERM inside the flip
            pool.kill_worker(0)

        killer = threading.Thread(target=assassin, name="assassin")
        killer.start()
        loaded_new = catalog.load("chaos", "v002")
        reload_started.set()
        epoch = server.reload_artifact(loaded_new)
        killer.join()
        assert epoch == 1

        # Supervision restarts the dead worker; the re-fork must mmap
        # the v002 snapshot the parent installed before shipping.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not pool.worker_alive(0):
            time.sleep(0.05)
        assert pool.worker_alive(0), "worker 0 never restarted"

        want = [new_fib.lookup(a) for a in addresses]
        for _ in range(6):  # enough batches to hit every worker
            assert server.lookup_batch(addresses, timeout=60) == want
        assert managed.health is not Health.FAILED
    assert server.drained()


def test_shed_overload_never_hangs_a_caller():
    """Under the shed policy a refused request fails fast — callers
    always get an answer or an error, never a hang."""
    base = build_fib(seed=3)
    server = LookupServer(HiBst(base), workers=1, max_batch=4,
                          max_wait_s=0.001, queue_depth=1, overload="shed")
    answered = shed = 0
    with server:
        handles = [server.submit([a % 256 for a in range(i, i + 4)])
                   for i in range(200)]
        server.flush()
        for handle in handles:
            try:
                hops = handle.result(timeout=60)
            except ServerError:
                shed += 1
                continue
            answered += 1
            assert hops == [base.lookup(a) for a in handle.addresses]
    assert answered + shed == 200
    assert answered > 0
    counters = server.registry.snapshot()["counters"]
    shed_total = sum(counters.get("repro_server_shed_total", {}).values())
    assert (shed_total > 0) == (shed > 0)
