"""Differential kernel-conformance fuzzer for the lane compiler.

Hypothesis generates random FIBs, churn batches, and address mixes;
every example asserts the four execution paths agree for all nine
algorithms:

    vector plan == scalar plan == CRAM interpreter == binary-trie oracle

fused and unfused, post-commit and post-rollback.  The address mixes
deliberately include *adversarial-depth* probes — prefix endpoints and
their ±1 neighbours, which exercise the deepest tree walks and the
equal/greater branches of every BST kernel — and the width-62/63/64
boundary, where int64 lanes run out of headroom and the vector plan
must delegate whole batches to its embedded scalar plan.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    Bsic,
    Dxr,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Poptrie,
    Resail,
    Sail,
)
from repro.control import CapacityGuard, ChurnGenerator, ManagedFib
from repro.core import compile_plan, compile_vector_plan
from repro.prefix import Fib, Prefix

#: The nine schemes at their fuzzing widths (SAIL/RESAIL are IPv4-only).
MAKERS = {
    "ltcam": (8, lambda fib: LogicalTcam(fib)),
    "hibst": (8, lambda fib: HiBst(fib)),
    "bsic": (8, lambda fib: Bsic(fib, k=4)),
    "dxr": (8, lambda fib: Dxr(fib, k=4)),
    "multibit": (8, lambda fib: MultibitTrie(fib, [4, 4])),
    "mashup": (8, lambda fib: Mashup(fib, [3, 2, 3])),
    "poptrie": (8, lambda fib: Poptrie(fib, dp_bits=4)),
    "sail": (32, lambda fib: Sail(fib)),
    "resail": (32, lambda fib: Resail(fib, min_bmp=13)),
}

#: Lane-width boundary: 62 is the last width that runs on int64 lanes;
#: 63 and 64 must transparently delegate to the scalar plan.
BOUNDARY_MAKERS = {
    "ltcam": lambda fib: LogicalTcam(fib),
    "hibst": lambda fib: HiBst(fib),
    "bsic": lambda fib: Bsic(fib, k=16),
    "multibit": lambda fib: MultibitTrie(
        fib, [16, 16, 16, fib.width - 48]),
    "mashup": lambda fib: Mashup(fib, [16, 16, 16, fib.width - 48]),
}

entry_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63),   # raw length
              st.integers(min_value=0, max_value=(1 << 64) - 1),  # bits
              st.integers(min_value=0, max_value=63)),  # hop
    min_size=0, max_size=24)


def build_fib(width: int, entries) -> Fib:
    fib = Fib(width)
    for raw_length, raw_bits, hop in entries:
        length = raw_length % (width + 1)
        fib.insert(Prefix.from_bits(raw_bits & ((1 << length) - 1),
                                    length, width), hop)
    return fib


def probe_addresses(fib: Fib, extras) -> list:
    """Adversarial-depth mix: every prefix's endpoints and their ±1
    neighbours (deepest walks, both compare branches), plus random
    draws and the address-space corners."""
    width = fib.width
    top = (1 << width) - 1
    addresses = {0, top, top >> 1, (top >> 1) + 1}
    for prefix, _hop in fib:
        lo = prefix.value
        hi = prefix.value | ((1 << (width - prefix.length)) - 1)
        for address in (lo - 1, lo, lo + 1, hi - 1, hi, hi + 1):
            if 0 <= address <= top:
                addresses.add(address)
    for extra in extras:
        addresses.add(extra & top)
    return sorted(addresses)


def assert_paths_agree(algo, fib, addresses, interpreter_every=16):
    expected = [fib.lookup(a) for a in addresses]
    plan = compile_plan(algo)
    assert [plan.lookup(a) for a in addresses] == expected
    fused = compile_vector_plan(algo, plan=plan)
    unfused = compile_vector_plan(algo, plan=plan, fuse=False)
    assert fused.lookup_batch_hops(addresses) == expected
    assert unfused.lookup_batch_hops(addresses) == expected
    # The per-packet interpreter re-derives the schedule per call:
    # probe a deterministic subset.
    for address in addresses[::max(1, len(addresses) // interpreter_every)]:
        assert algo.cram_lookup(address) == fib.lookup(address)


@pytest.mark.parametrize("name", sorted(MAKERS))
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(entries=entry_lists,
       extras=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                       max_size=8))
def test_differential_paths_agree(name, entries, extras):
    width, maker = MAKERS[name]
    fib = build_fib(width, entries)
    algo = maker(fib)
    assert_paths_agree(algo, fib, probe_addresses(fib, extras))


@pytest.mark.parametrize("width", (62, 63, 64))
@pytest.mark.parametrize("name", sorted(BOUNDARY_MAKERS))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(entries=entry_lists,
       extras=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                       max_size=8))
def test_differential_width_boundaries(name, width, entries, extras):
    fib = build_fib(width, entries)
    algo = BOUNDARY_MAKERS[name](fib)
    addresses = probe_addresses(fib, extras)
    expected = [fib.lookup(a) for a in addresses]
    plan = compile_plan(algo)
    assert [plan.lookup(a) for a in addresses] == expected
    for fuse in (True, False):
        vplan = compile_vector_plan(algo, plan=plan, fuse=fuse)
        if width > 62:
            # Over-wide lanes: the whole batch must delegate, and the
            # plan must say so instead of silently mis-answering.
            assert not vplan.fully_lowered
        assert vplan.lookup_batch_hops(addresses) == expected


@pytest.mark.parametrize("name", sorted(MAKERS))
@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_differential_post_commit_and_post_rollback(name, seed):
    width, maker = MAKERS[name]
    base = build_fib(width, [(1, 1, 1), (3, 5, 2), (width, 77, 3)])
    for guard, expect_outcome in (
        (CapacityGuard(tcam_blocks=1 << 30, sram_pages=1 << 30,
                       stage_budget=1 << 30,
                       dleft_overflow_limit=1 << 30), "commit"),
        (CapacityGuard(tcam_blocks=0, sram_pages=0, stage_budget=1,
                       dleft_overflow_limit=0), "rollback"),
    ):
        managed = ManagedFib(maker, base, guard=guard)
        outcomes = set()
        for batch in ChurnGenerator(base, seed=seed).batches(4, 6):
            outcomes.add(managed.apply_batch(batch))
            # After every landed OR rolled-back batch, the committed
            # structure must still answer like the committed oracle
            # through all four paths, fused and unfused.
            oracle = managed.oracle
            addresses = probe_addresses(oracle, [seed])
            assert_paths_agree(managed.algo, oracle, addresses,
                               interpreter_every=4)
        if expect_outcome == "rollback":
            # A batch may still land under the punitive guard — but
            # only by shrinking the FIB inside the budget (e.g. a
            # trace that withdraws every route); anything else must
            # roll back.
            assert outcomes <= {"batch_rolled_back", "batch_applied",
                                "batch_rebuilt"}
            if outcomes != {"batch_rolled_back"}:
                hard, _soft = guard.inspect(managed.algo)
                assert not hard, (outcomes, hard)
        else:
            assert "batch_rolled_back" not in outcomes
