"""Unit tests for MASHUP."""

import pytest

from repro.algorithms import Mashup, MultibitTrie, default_strides
from repro.chip import MemoryKind, map_to_ideal_rmt
from repro.prefix import Fib, from_bitstring, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


class TestHybridization:
    def test_default_strides(self):
        assert default_strides(32) == (16, 4, 4, 8)
        assert default_strides(64) == (20, 12, 16, 16)
        with pytest.raises(ValueError):
            default_strides(128)

    def test_sparse_nodes_become_tcam(self):
        # One prefix in a 4-bit-stride node: 16 slots vs 1 TCAM entry.
        fib = Fib(8)
        fib.insert(from_bitstring("1010", 8), 1)
        mashup = Mashup(fib, [4, 4])
        kinds = mashup.level_kinds[0]
        assert len(kinds["tcam"]) == 1
        assert not kinds["sram"]

    def test_dense_nodes_stay_sram(self):
        # A fully populated 2-bit node: 4 slots vs 4 entries -> SRAM.
        fib = Fib(8)
        for i in range(4):
            fib.insert(from_bitstring(format(i, "02b"), 8), i)
        mashup = Mashup(fib, [2, 6])
        kinds = mashup.level_kinds[0]
        assert len(kinds["sram"]) == 1
        assert not kinds["tcam"]

    def test_area_factor_extremes(self, example_fib):
        all_sram = Mashup(example_fib, [2, 1, 2, 3], area_factor=10**9)
        assert all(not k["tcam"] for k in all_sram.level_kinds)
        all_tcam = Mashup(example_fib, [2, 1, 2, 3], area_factor=0)
        assert all(not k["sram"] for k in all_tcam.level_kinds)
        for addr in range(256):
            assert all_sram.lookup(addr) == example_fib.lookup(addr)
            assert all_tcam.lookup(addr) == example_fib.lookup(addr)


class TestLookup:
    def test_exhaustive_on_example(self, example_fib):
        mashup = Mashup(example_fib, [2, 1, 2, 3])
        for addr in range(256):
            assert mashup.lookup(addr) == example_fib.lookup(addr), addr

    def test_matches_oracle_ipv4(self, ipv4_fib, ipv4_addresses):
        mashup = Mashup(ipv4_fib)
        for addr in ipv4_addresses:
            assert mashup.lookup(addr) == ipv4_fib.lookup(addr)

    def test_matches_oracle_ipv6(self, ipv6_fib, ipv6_addresses):
        mashup = Mashup(ipv6_fib)
        for addr in ipv6_addresses[:500]:
            assert mashup.lookup(addr) == ipv6_fib.lookup(addr)

    def test_matches_plain_multibit(self, ipv4_fib, ipv4_addresses):
        """Hybridization must be behaviour-preserving."""
        mashup = Mashup(ipv4_fib)
        trie = MultibitTrie(ipv4_fib, list(default_strides(32)))
        for addr in ipv4_addresses[:500]:
            assert mashup.lookup(addr) == trie.lookup(addr)


class TestUpdates:
    def test_insert_delete(self, example_fib):
        mashup = Mashup(example_fib, [2, 1, 2, 3])
        extra = from_bitstring("1111", 8)
        mashup.insert(extra, 7)
        assert mashup.lookup(0b11110101) == 7
        mashup.delete(extra)
        for addr in range(256):
            assert mashup.lookup(addr) == example_fib.lookup(addr)


class TestModel:
    def test_steps_equal_levels(self, example_fib):
        mashup = Mashup(example_fib, [2, 1, 2, 3])
        assert mashup.cram_metrics().steps == 4  # paper Tables 4/5

    def test_cram_program_equivalence(self, example_fib):
        mashup = Mashup(example_fib, [2, 1, 2, 3])
        for addr in range(256):
            assert mashup.cram_lookup(addr) == mashup.lookup(addr), addr

    def test_hybrid_beats_pure_sram_on_memory(self, ipv4_fib):
        mashup = Mashup(ipv4_fib)
        trie = MultibitTrie(ipv4_fib, list(default_strides(32)))
        hybrid = map_to_ideal_rmt(mashup.layout())
        pure = map_to_ideal_rmt(trie.layout())
        assert hybrid.sram_pages < pure.sram_pages

    def test_coalescing_reduces_fragmentation(self, ipv4_fib):
        coalesced = map_to_ideal_rmt(Mashup(ipv4_fib, coalesce=True).layout())
        fragmented = map_to_ideal_rmt(Mashup(ipv4_fib, coalesce=False).layout())
        assert coalesced.tcam_blocks < fragmented.tcam_blocks
        assert coalesced.sram_pages <= fragmented.sram_pages

    def test_idioms_declared(self, example_fib):
        labels = {a.idiom.label for a in Mashup(example_fib, [2, 1, 2, 3]).idioms_applied()}
        assert labels == {"I1", "I2", "I4", "I5"}

    def test_tcam_entries_match_accounting(self, ipv4_fib):
        mashup = Mashup(ipv4_fib)
        for level, kinds in enumerate(mashup.level_kinds):
            expected = sum(n.tcam_items() for n in kinds["tcam"])
            assert len(mashup.tcam_levels[level]) == expected
