"""Incremental update tests (Appendix A.3): algorithms under churn.

A randomized insert/delete storm runs against every updatable
algorithm; after each mutation the algorithm must agree with a
reference trie maintained in parallel.
"""

import random

import pytest

from repro.algorithms import (
    Bsic,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Resail,
    Sail,
    UpdateUnsupported,
)
from repro.prefix import Fib, Prefix, parse_prefix


def random_prefix(rng, width, min_len=1):
    length = rng.randrange(min_len, width + 1)
    bits = rng.getrandbits(length) if length else 0
    return Prefix.from_bits(bits, length, width)


def churn(algo, fib, width, steps, rng, probe_addresses):
    live = dict(fib)
    for _ in range(steps):
        prefix = random_prefix(rng, width)
        if prefix in live and rng.random() < 0.45:
            algo.delete(prefix)
            fib.delete(prefix)
            del live[prefix]
        else:
            hop = rng.randrange(32)
            algo.insert(prefix, hop)
            fib.insert(prefix, hop)
            live[prefix] = hop
        for addr in probe_addresses:
            assert algo.lookup(addr) == fib.lookup(addr), (prefix, addr)


IPV4_UPDATABLE = [
    ("SAIL", Sail),
    ("RESAIL", lambda fib: Resail(fib, hash_capacity=1 << 15)),
    ("BSIC", lambda fib: Bsic(fib, k=8)),
    ("multibit", lambda fib: MultibitTrie(fib, [8, 8, 8, 8])),
    ("MASHUP", lambda fib: Mashup(fib, [8, 8, 8, 8])),
    ("HI-BST", HiBst),
    ("logical TCAM", LogicalTcam),
]


@pytest.mark.parametrize("name,maker", IPV4_UPDATABLE,
                         ids=[n for n, _ in IPV4_UPDATABLE])
def test_update_storm_ipv4(name, maker):
    rng = random.Random(42)
    fib = Fib(32)
    algo = maker(fib)
    probes = [rng.getrandbits(32) for _ in range(64)]
    # Seed some probes under prefixes we will insert, by probing after
    # each step anyway; 80 mutations keeps the slowest rebuilds quick.
    churn(algo, fib, 32, 80, rng, probes)


def test_resail_update_storm_respects_min_bmp_expansion():
    """Churn concentrated on short prefixes (the expansion machinery)."""
    rng = random.Random(7)
    fib = Fib(32)
    algo = Resail(fib, min_bmp=13, hash_capacity=1 << 16)
    live = {}
    probes = [rng.getrandbits(32) for _ in range(64)]
    for _ in range(120):
        length = rng.choice([4, 6, 8, 10, 12, 13, 14, 20, 24, 28, 32])
        prefix = Prefix.from_bits(rng.getrandbits(length), length, 32)
        if prefix in live and rng.random() < 0.5:
            algo.delete(prefix)
            fib.delete(prefix)
            del live[prefix]
        else:
            hop = rng.randrange(64)
            algo.insert(prefix, hop)
            fib.insert(prefix, hop)
            live[prefix] = hop
        for addr in probes:
            assert algo.lookup(addr) == fib.lookup(addr)


def test_resail_short_prefix_next_hop_modify():
    """Re-announcing a short prefix with a new hop must update every
    expansion slot (minimal repro found by the churn trace shrinker:
    +37.128.0.0/11->76 then +37.128.0.0/11->249 left slots at 76)."""
    fib = Fib(32)
    algo = Resail(fib, min_bmp=13, hash_capacity=1 << 12)
    prefix = parse_prefix("37.128.0.0/11")
    algo.insert(prefix, 76)
    fib.insert(prefix, 76)
    algo.insert(prefix, 249)
    fib.insert(prefix, 249)
    for addr in (0x25800000, 0x25800001, 0x258FFFFF, 0x259FFFFF):
        assert algo.lookup(addr) == 249 == fib.lookup(addr)
    # A longer original must still own its slots afterwards.
    longer = parse_prefix("37.128.0.0/12")
    algo.insert(longer, 7)
    fib.insert(longer, 7)
    algo.insert(prefix, 8)
    fib.insert(prefix, 8)
    assert algo.lookup(0x25800000) == 7 == fib.lookup(0x25800000)
    assert algo.lookup(0x259FFFFF) == 8 == fib.lookup(0x259FFFFF)


def test_base_class_reports_unsupported():
    from repro.algorithms.base import LookupAlgorithm

    class Stub(LookupAlgorithm):
        name, width = "stub", 8

        def lookup(self, address):
            return None

        def cram_program(self):
            raise NotImplementedError

        def layout(self):
            raise NotImplementedError

    stub = Stub()
    with pytest.raises(UpdateUnsupported):
        stub.insert(Prefix.from_bits(0, 1, 8), 1)
    with pytest.raises(UpdateUnsupported):
        stub.delete(Prefix.from_bits(0, 1, 8))


# ---------------------------------------------------------------------------
# Update-support audit: every algorithm either takes updates correctly
# or refuses with UpdateUnsupported — never a bare NotImplementedError
# and never a silently wrong structure.
# ---------------------------------------------------------------------------

def _audit_registry():
    from repro.cli import ALGORITHM_FACTORIES

    return sorted(ALGORITHM_FACTORIES.items())


def _small_v4_fib():
    from repro.datasets import small_example_fib  # noqa: F401 (8-bit toy)

    entries = [
        (Prefix.from_bits(0b1010, 4, 32), 1),
        (Prefix.from_bits(0x0A00, 16, 32), 2),
        (Prefix.from_bits(0x0A0001, 24, 32), 3),
        (Prefix.from_bits(0x0A000102, 32, 32), 4),
        (Prefix.from_bits(0xC0A8, 16, 32), 5),
    ]
    return Fib(32, entries)


@pytest.mark.parametrize("name,factory", _audit_registry(),
                         ids=[n for n, _ in _audit_registry()])
def test_update_support_audit(name, factory):
    from repro.algorithms import UPDATE_UNSUPPORTED

    fib = _small_v4_fib()
    algo = factory(Fib(32, list(fib)))
    strategy = algo.update_strategy
    assert strategy in ("in_place", "rebuild", "unsupported")
    assert algo.supports_updates == (strategy != UPDATE_UNSUPPORTED)

    new_prefix = Prefix.from_bits(0x0B00, 16, 32)
    victim = Prefix.from_bits(0x0A0001, 24, 32)
    probes = [0x0A000102, 0x0A000199, 0x0B000001, 0xC0A80101, 0x7F000001]

    if not algo.supports_updates:
        # Must raise the dedicated type, and must not corrupt the
        # structure while failing.
        with pytest.raises(UpdateUnsupported):
            algo.insert(new_prefix, 9)
        with pytest.raises(UpdateUnsupported):
            algo.delete(victim)
        for addr in probes:
            assert algo.lookup(addr) == fib.lookup(addr), name
    else:
        algo.insert(new_prefix, 9)
        fib.insert(new_prefix, 9)
        algo.delete(victim)
        fib.delete(victim)
        for addr in probes + [0x0B000042]:
            assert algo.lookup(addr) == fib.lookup(addr), name


@pytest.mark.parametrize("name,factory", _audit_registry(),
                         ids=[n for n, _ in _audit_registry()])
def test_snapshot_is_independent(name, factory):
    """The transactional snapshot hook: mutating the live algorithm
    must not leak into a previously taken snapshot."""
    fib = _small_v4_fib()
    algo = factory(Fib(32, list(fib)))
    snap = algo.snapshot()
    if not algo.supports_updates:
        assert snap.lookup(0x0A000199) == algo.lookup(0x0A000199)
        return
    target = Prefix.from_bits(0x0A0001, 24, 32)
    algo.delete(target)
    # The snapshot still answers from the pre-delete state.
    probe = 0x0A000199
    assert snap.lookup(probe) == fib.lookup(probe), name
    fib.delete(target)
    assert algo.lookup(probe) == fib.lookup(probe), name
