"""Incremental update tests (Appendix A.3): algorithms under churn.

A randomized insert/delete storm runs against every updatable
algorithm; after each mutation the algorithm must agree with a
reference trie maintained in parallel.
"""

import random

import pytest

from repro.algorithms import (
    Bsic,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Resail,
    Sail,
    UpdateUnsupported,
)
from repro.prefix import Fib, Prefix


def random_prefix(rng, width, min_len=1):
    length = rng.randrange(min_len, width + 1)
    bits = rng.getrandbits(length) if length else 0
    return Prefix.from_bits(bits, length, width)


def churn(algo, fib, width, steps, rng, probe_addresses):
    live = dict(fib)
    for _ in range(steps):
        prefix = random_prefix(rng, width)
        if prefix in live and rng.random() < 0.45:
            algo.delete(prefix)
            fib.delete(prefix)
            del live[prefix]
        else:
            hop = rng.randrange(32)
            algo.insert(prefix, hop)
            fib.insert(prefix, hop)
            live[prefix] = hop
        for addr in probe_addresses:
            assert algo.lookup(addr) == fib.lookup(addr), (prefix, addr)


IPV4_UPDATABLE = [
    ("SAIL", Sail),
    ("RESAIL", lambda fib: Resail(fib, hash_capacity=1 << 15)),
    ("BSIC", lambda fib: Bsic(fib, k=8)),
    ("multibit", lambda fib: MultibitTrie(fib, [8, 8, 8, 8])),
    ("MASHUP", lambda fib: Mashup(fib, [8, 8, 8, 8])),
    ("HI-BST", HiBst),
    ("logical TCAM", LogicalTcam),
]


@pytest.mark.parametrize("name,maker", IPV4_UPDATABLE,
                         ids=[n for n, _ in IPV4_UPDATABLE])
def test_update_storm_ipv4(name, maker):
    rng = random.Random(42)
    fib = Fib(32)
    algo = maker(fib)
    probes = [rng.getrandbits(32) for _ in range(64)]
    # Seed some probes under prefixes we will insert, by probing after
    # each step anyway; 80 mutations keeps the slowest rebuilds quick.
    churn(algo, fib, 32, 80, rng, probes)


def test_resail_update_storm_respects_min_bmp_expansion():
    """Churn concentrated on short prefixes (the expansion machinery)."""
    rng = random.Random(7)
    fib = Fib(32)
    algo = Resail(fib, min_bmp=13, hash_capacity=1 << 16)
    live = {}
    probes = [rng.getrandbits(32) for _ in range(64)]
    for _ in range(120):
        length = rng.choice([4, 6, 8, 10, 12, 13, 14, 20, 24, 28, 32])
        prefix = Prefix.from_bits(rng.getrandbits(length), length, 32)
        if prefix in live and rng.random() < 0.5:
            algo.delete(prefix)
            fib.delete(prefix)
            del live[prefix]
        else:
            hop = rng.randrange(64)
            algo.insert(prefix, hop)
            fib.insert(prefix, hop)
            live[prefix] = hop
        for addr in probes:
            assert algo.lookup(addr) == fib.lookup(addr)


def test_base_class_reports_unsupported():
    from repro.algorithms.base import LookupAlgorithm

    class Stub(LookupAlgorithm):
        name, width = "stub", 8

        def lookup(self, address):
            return None

        def cram_program(self):
            raise NotImplementedError

        def layout(self):
            raise NotImplementedError

    stub = Stub()
    with pytest.raises(UpdateUnsupported):
        stub.insert(Prefix.from_bits(0, 1, 8), 1)
    with pytest.raises(UpdateUnsupported):
        stub.delete(Prefix.from_bits(0, 1, 8))
