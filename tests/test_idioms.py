"""Unit tests for the optimization idioms module."""

import pytest

from repro.core import (
    TCAM_AREA_FACTOR,
    Idiom,
    IdiomApplication,
    prefer_sram,
    tag_width,
)


class TestIdiomEnum:
    def test_eight_idioms_numbered_like_the_paper(self):
        assert len(Idiom) == 8
        assert Idiom.COMPRESS_WITH_TCAM.value == 1
        assert Idiom.MEMORY_FAN_OUT.value == 8
        assert Idiom.LOOK_ASIDE_TCAM.label == "I6"

    def test_descriptions_present(self):
        for idiom in Idiom:
            assert len(idiom.description) > 20


class TestPreferSram:
    def test_break_even_at_3x(self):
        assert TCAM_AREA_FACTOR == 3
        assert prefer_sram(expanded_entries=5, tcam_entries=2)  # 5 < 6
        assert not prefer_sram(expanded_entries=6, tcam_entries=2)  # 6 == 6
        assert not prefer_sram(expanded_entries=7, tcam_entries=2)

    def test_empty_node_prefers_sram(self):
        assert prefer_sram(0, 0)

    def test_custom_factor(self):
        assert prefer_sram(5, 2, c=10)
        assert not prefer_sram(50, 2, c=10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            prefer_sram(-1, 2)


class TestTagWidth:
    def test_powers_of_two(self):
        assert tag_width(1) == 0
        assert tag_width(2) == 1
        assert tag_width(3) == 2
        assert tag_width(1024) == 10
        assert tag_width(1025) == 11

    def test_invalid(self):
        with pytest.raises(ValueError):
            tag_width(0)


def test_idiom_application_describe():
    app = IdiomApplication(Idiom.LOOK_ASIDE_TCAM, "long prefixes", "no expansion")
    assert "I6" in app.describe()
    assert "long prefixes" in app.describe()
