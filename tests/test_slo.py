"""SLO tracker tests (:mod:`repro.obs.slo` + the health coupling).

The unit half proves the percentile math (exact nearest-rank over the
sliding window) and the breach machinery; the integration half proves
a sustained p99 blowout degrades :class:`ServingHealth` the same way a
deadline-miss storm does.
"""

import random

import pytest

from repro.algorithms.hibst import HiBst
from repro.obs import FakeClock, MetricsRegistry
from repro.obs.slo import (
    SLO_QUANTILES,
    SloConfig,
    SloTracker,
    window_percentile,
)
from repro.prefix.prefix import Prefix
from repro.prefix.trie import Fib
from repro.server import LookupServer, ServingHealth, ServingState

WIDTH = 8


def small_fib(seed=3, size=40):
    rng = random.Random(seed)
    fib = Fib(WIDTH)
    while len(fib) < size:
        length = rng.randint(1, WIDTH)
        fib.insert(Prefix.from_bits(rng.getrandbits(length), length, WIDTH),
                   rng.randint(1, 99))
    return fib


class TestWindowPercentile:
    def test_empty_window_is_none(self):
        assert window_percentile([], 0.99) is None

    def test_exact_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert window_percentile(values, 0.50) == 50.0
        assert window_percentile(values, 0.99) == 99.0
        assert window_percentile(values, 1.0) == 100.0
        assert window_percentile(values, 0.001) == 1.0

    def test_single_value(self):
        assert window_percentile([0.25], 0.999) == 0.25

    def test_order_does_not_matter(self):
        values = [3.0, 1.0, 2.0]
        assert window_percentile(values, 0.5) == 2.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            window_percentile([1.0], 0.0)
        with pytest.raises(ValueError):
            window_percentile([1.0], 1.5)


class TestSloConfig:
    def test_defaults_are_ordered(self):
        config = SloConfig()
        assert (config.targets["p50"] <= config.targets["p99"]
                <= config.targets["p999"])
        assert set(config.targets) == set(SLO_QUANTILES)

    def test_to_dict_roundtrips_the_knobs(self):
        doc = SloConfig(p50_s=0.01, p99_s=0.02, p999_s=0.03,
                        window=16, evaluate_every=4).to_dict()
        assert doc["targets_s"] == {"p50": 0.01, "p99": 0.02, "p999": 0.03}
        assert doc["window"] == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            SloConfig(p50_s=0.0)
        with pytest.raises(ValueError):
            SloConfig(p50_s=1.0, p99_s=0.5)
        with pytest.raises(ValueError):
            SloConfig(window=0)
        with pytest.raises(ValueError):
            SloConfig(evaluate_every=0)


class TestSloTracker:
    def test_observes_and_reports_percentiles(self):
        tracker = SloTracker(SloConfig(window=100, evaluate_every=1000))
        for v in range(1, 101):
            tracker.observe("request", v / 1000.0)
        pcts = tracker.percentiles("request")
        assert pcts["p50"] == pytest.approx(0.050)
        assert pcts["p99"] == pytest.approx(0.099)
        report = tracker.report()
        assert report["phases"]["request"]["observed"] == 100
        assert report["phases"]["request"]["window_n"] == 100

    def test_window_slides(self):
        tracker = SloTracker(SloConfig(window=4, evaluate_every=1000))
        for v in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
            tracker.observe("request", v)
        assert tracker.percentiles("request")["p50"] == 9.0

    def test_unknown_phase_percentiles_are_none(self):
        tracker = SloTracker()
        assert tracker.percentiles("gate") == {
            "p50": None, "p99": None, "p999": None}

    def test_breach_fires_callback_and_counter(self):
        registry = MetricsRegistry()
        breaches = []
        tracker = SloTracker(
            SloConfig(p50_s=0.001, p99_s=0.002, p999_s=0.003,
                      window=16, evaluate_every=4),
            registry=registry, server="s",
            on_breach=lambda q, v, t: breaches.append((q, v, t)))
        for _ in range(4):
            tracker.observe("request", 0.5)  # way over every target
        assert len(breaches) == 3  # p50, p99, p999 all breached
        assert tracker.breaches == 3
        counters = registry.snapshot()["counters"]
        got = counters["repro_server_slo_breaches_total"]
        assert got['{quantile="p50",server="s"}'] == 1
        assert got['{quantile="p999",server="s"}'] == 1

    def test_targets_are_exported_as_gauges(self):
        registry = MetricsRegistry()
        SloTracker(SloConfig(p50_s=0.01, p99_s=0.02, p999_s=0.04),
                   registry=registry, server="s")
        gauges = registry.snapshot()["gauges"]
        got = gauges["repro_server_slo_target_seconds"]
        assert got['{quantile="p50",server="s"}'] == 0.01
        assert got['{quantile="p999",server="s"}'] == 0.04

    def test_evaluation_is_amortised(self):
        tracker = SloTracker(
            SloConfig(p50_s=0.001, p99_s=0.002, p999_s=0.003,
                      window=64, evaluate_every=8))
        for _ in range(7):
            tracker.observe("request", 1.0)
        assert tracker.breaches == 0  # not evaluated yet
        tracker.observe("request", 1.0)
        assert tracker.breaches == 3

    def test_non_request_phases_never_trip_the_slo(self):
        tracker = SloTracker(
            SloConfig(p50_s=0.001, p99_s=0.002, p999_s=0.003,
                      window=16, evaluate_every=1))
        for _ in range(16):
            tracker.observe("execute", 99.0)
        assert tracker.breaches == 0


class TestHealthCoupling:
    def test_slo_breaches_degrade_serving_health(self):
        clock = FakeClock()
        health = ServingHealth(clock, queue_capacity=32)
        assert health.state is ServingState.HEALTHY
        for _ in range(health.degraded_slo_breaches):
            health.note_slo_breach()
        assert health.state is ServingState.DEGRADED
        for _ in range(health.brownout_slo_breaches):
            health.note_slo_breach()
        assert health.state is ServingState.BROWNOUT

    def test_server_wires_breaches_into_health(self):
        clock = FakeClock()
        server = LookupServer(
            HiBst(small_fib()), workers=1, clock=clock,
            slo=SloConfig(p50_s=1e-9, p99_s=1e-9, p999_s=1e-9,
                          window=16, evaluate_every=1))
        with server:
            # FakeClock durations are exactly 0.0 — the served lookups
            # never breach; feeding the tracker directly proves the
            # on_breach -> health.note_slo_breach wiring end-to-end.
            for _ in range(server.health.degraded_slo_breaches * 2):
                server.slo.observe("request", 1.0)
            assert server.slo.breaches > 0
            assert server.health_state is not ServingState.HEALTHY

    def test_server_default_slo_report_shape(self):
        server = LookupServer(HiBst(small_fib()), workers=1,
                              clock=FakeClock())
        with server:
            server.lookup_batch([1, 2], timeout=30)
            report = server.slo.report()
        assert set(report) == {"slo", "phases", "breaches"}
        assert "request" in report["phases"]
        for key in ("p50_s", "p99_s", "p999_s", "observed", "window_n"):
            assert key in report["phases"]["request"]
