"""Property-based tests (hypothesis) on the core data structures.

Invariants exercised:
  * the binary trie is a faithful map + LPM oracle against a model dict;
  * prefix expansion preserves longest-match semantics exactly;
  * range expansion + BST search equals trie LPM over the full space;
  * TCAM prefix search equals trie LPM;
  * d-left stores and retrieves arbitrary key/value sets;
  * bit marking is a bijection on (bits, length);
  * RESAIL/BSIC/MASHUP equal the oracle on arbitrary small FIBs;
  * arbitrary update interleavings through the managed runtime never
    leave a stale entry in the engine's FIB cache — commits invalidate
    exactly what they touch, rollbacks leave the cache untouched.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import Bsic, LogicalTcam, Mashup, Resail, bit_mark, unmark
from repro.control import (
    ANNOUNCE,
    WITHDRAW,
    FaultPlan,
    ManagedFib,
    RuntimePolicy,
    UpdateOp,
)
from repro.engine import BatchEngine
from repro.memory import DLeftHashTable, TcamTable
from repro.prefix import (
    BinaryTrie,
    Fib,
    Prefix,
    expand_to_lengths,
    expand_to_ranges,
    ranges_to_bst,
)

WIDTH = 8


@st.composite
def prefixes(draw, width=WIDTH, min_len=0):
    length = draw(st.integers(min_len, width))
    bits = draw(st.integers(0, (1 << length) - 1)) if length else 0
    return Prefix.from_bits(bits, length, width)


@st.composite
def entry_lists(draw, width=WIDTH, min_len=0, max_size=24):
    raw = draw(st.lists(
        st.tuples(prefixes(width, min_len), st.integers(0, 15)),
        max_size=max_size,
    ))
    seen, out = set(), []
    for prefix, hop in raw:
        if prefix not in seen:
            seen.add(prefix)
            out.append((prefix, hop))
    return out


def reference_lpm(entries, address):
    best = None
    for prefix, hop in entries:
        if prefix.matches(address):
            if best is None or prefix.length > best[0]:
                best = (prefix.length, hop)
    return best[1] if best else None


class TestTrieProperties:
    @given(entry_lists(), st.integers(0, 255))
    def test_trie_lpm_matches_linear_scan(self, entries, address):
        trie = BinaryTrie(WIDTH)
        for prefix, hop in entries:
            trie.insert(prefix, hop)
        assert trie.lookup(address) == reference_lpm(entries, address)

    @given(entry_lists())
    def test_insert_delete_all_leaves_empty(self, entries):
        trie = BinaryTrie(WIDTH)
        for prefix, hop in entries:
            trie.insert(prefix, hop)
        for prefix, _hop in entries:
            trie.delete(prefix)
        assert len(trie) == 0
        assert all(trie.lookup(a) is None for a in range(0, 256, 17))


class TestExpansionProperties:
    @given(entry_lists(min_len=0), st.integers(0, 255))
    def test_expansion_preserves_lpm(self, entries, address):
        expanded = expand_to_lengths(entries, [2, 5, 8])
        before = BinaryTrie(WIDTH)
        after = BinaryTrie(WIDTH)
        for p, h in entries:
            before.insert(p, h)
        for p, h in expanded:
            after.insert(p, h)
        assert after.lookup(address) == before.lookup(address)

    @given(entry_lists(min_len=0))
    def test_expansion_lengths_are_allowed(self, entries):
        for prefix, _hop in expand_to_lengths(entries, [2, 5, 8]):
            assert prefix.length in (2, 5, 8)


class TestRangeProperties:
    @given(entry_lists(min_len=1), st.integers(0, 255))
    def test_bst_search_equals_lpm(self, entries, address):
        table = expand_to_ranges(entries, WIDTH, default_hop=None)
        bst = ranges_to_bst(table)
        assert bst.search(address) == reference_lpm(entries, address)

    @given(entry_lists(min_len=1))
    def test_ranges_cover_space_sorted_and_merged(self, entries):
        table = expand_to_ranges(entries, WIDTH)
        assert table[0].left == 0
        lefts = [r.left for r in table]
        assert lefts == sorted(set(lefts))
        for a, b in zip(table, table[1:]):
            assert a.next_hop != b.next_hop  # fully merged


class TestTcamProperties:
    @given(entry_lists(min_len=0), st.integers(0, 255))
    def test_tcam_prefix_search_is_lpm(self, entries, address):
        tcam = TcamTable(WIDTH)
        for prefix, hop in entries:
            tcam.insert_prefix(prefix, hop)
        assert tcam.search(address) == reference_lpm(entries, address)


class TestDleftProperties:
    @given(st.dictionaries(st.integers(0, (1 << 20) - 1), st.integers(0, 255),
                           max_size=200))
    def test_stores_arbitrary_maps(self, mapping):
        table = DLeftHashTable(20, 8, capacity=max(1, len(mapping)))
        for key, value in mapping.items():
            table.insert(key, value)
        for key, value in mapping.items():
            assert table.lookup(key) == value
        assert len(table) == len(mapping)


class TestBitMarkingProperties:
    @given(st.integers(0, 24).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(0, (1 << n) - 1 if n else 0))
    ))
    def test_bijection(self, args):
        length, bits = args
        assert unmark(bit_mark(bits, length)) == (bits, length)


class TestAlgorithmProperties:
    @settings(max_examples=25, deadline=None)
    @given(entry_lists(max_size=16))
    def test_bsic_equals_oracle(self, entries):
        fib = Fib(WIDTH, entries)
        bsic = Bsic(fib, k=4)
        for address in range(0, 256, 5):
            assert bsic.lookup(address) == fib.lookup(address)

    @settings(max_examples=25, deadline=None)
    @given(entry_lists(max_size=16))
    def test_mashup_equals_oracle(self, entries):
        fib = Fib(WIDTH, entries)
        mashup = Mashup(fib, [3, 2, 3])
        for address in range(0, 256, 5):
            assert mashup.lookup(address) == fib.lookup(address)

@st.composite
def update_batches(draw, width=WIDTH, max_batches=4, max_batch_size=6,
                   announce_only=False):
    """Batches of announce/withdraw interleavings over a small space.

    ``announce_only`` keeps every op valid (withdraws of absent routes
    are absorbed at validation, which can empty a batch).
    """
    n_batches = draw(st.integers(1, max_batches))
    batches = []
    for _ in range(n_batches):
        ops = []
        for _ in range(draw(st.integers(1, max_batch_size))):
            prefix = draw(prefixes(width, min_len=1))
            if announce_only or draw(st.booleans()):
                ops.append(UpdateOp(ANNOUNCE, prefix,
                                    draw(st.integers(0, 15))))
            else:
                ops.append(UpdateOp(WITHDRAW, prefix))
        batches.append(ops)
    return batches


class TestEngineCacheProperties:
    """No stale cache entry survives a commit — or a rollback.

    The engine subscribes to :class:`ManagedFib` commits; whatever
    interleaving of announces and withdraws lands (including withdraws
    of absent prefixes and re-announcements with new hops), after every
    batch each cached ``(address, hop)`` pair and every engine answer
    must equal the post-batch oracle.
    """

    PROBES = list(range(0, 256, 7))

    @settings(max_examples=40, deadline=None)
    @given(entry_lists(max_size=12), update_batches())
    def test_no_stale_cache_entry_survives_a_commit(self, entries, batches):
        managed = ManagedFib(lambda f: LogicalTcam(f), Fib(WIDTH, entries))
        engine = BatchEngine.over_managed(managed, cache_size=16)
        engine.lookup_batch(self.PROBES)  # populate the cache
        for batch in batches:
            outcome = managed.apply_batch(batch)
            assert outcome in ("batch_applied", "batch_rebuilt")
            oracle = managed.oracle
            for address, hop in engine.cache.items():
                assert hop == oracle.lookup(address)
            for address in self.PROBES:
                assert engine.lookup(address) == oracle.lookup(address)

    @settings(max_examples=25, deadline=None)
    @given(entry_lists(max_size=12),
           update_batches(max_batches=2, announce_only=True))
    def test_rollback_leaves_cache_consistent(self, entries, batches):
        # Every attempt faults, retries are off, and the rebuild budget
        # is zero: each batch must roll back, fire no commit listener,
        # and leave the cache exactly as consistent as before.
        managed = ManagedFib(
            lambda f: LogicalTcam(f),
            Fib(WIDTH, entries),
            policy=RuntimePolicy(max_retries=0, rebuild_budget=0),
            faults=FaultPlan.build(["mid_update_exception"], seed=9,
                                   rate=1.0),
        )
        engine = BatchEngine.over_managed(managed, cache_size=16)
        engine.lookup_batch(self.PROBES)
        cached_before = dict(engine.cache.items())
        for batch in batches:
            assert managed.apply_batch(batch) == "batch_rolled_back"
            assert dict(engine.cache.items()) == cached_before
            oracle = managed.oracle
            for address in self.PROBES:
                assert engine.lookup(address) == oracle.lookup(address)
            cached_before = dict(engine.cache.items())
        assert engine.registry.counter(
            "repro_engine_plan_recompiles_total", ""
        ).value(engine="engine") == 0


class TestResailWideProperties:
    @settings(max_examples=20, deadline=None)
    @given(entry_lists(width=32, min_len=1, max_size=12))
    def test_resail_equals_oracle(self, entries):
        fib = Fib(32, entries)
        resail = Resail(fib, min_bmp=13, hash_capacity=1 << 16)
        probes = [p.value | (0x5A5A5A5A >> p.length if p.length < 32 else 0)
                  for p, _ in entries] + [0, 0xFFFFFFFF, 0x0A0A0A0A]
        for address in probes:
            address &= 0xFFFFFFFF
            assert resail.lookup(address) == fib.lookup(address)
