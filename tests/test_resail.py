"""Unit tests for RESAIL."""

import pytest

from repro.algorithms import Resail, bit_mark, unmark
from repro.algorithms.resail import (
    resail_layout_from_counts,
    resail_layout_from_distribution,
)
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.datasets import ipv4_length_distribution
from repro.prefix import Fib, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


@pytest.fixture()
def small_resail():
    fib = Fib(32)
    fib.insert(P("10.0.0.0/8"), 1)  # shorter than min_bmp: expanded
    fib.insert(P("10.1.0.0/16"), 2)
    fib.insert(P("10.1.2.0/24"), 3)
    fib.insert(P("10.1.2.128/25"), 4)  # look-aside TCAM
    fib.insert(P("10.1.2.192/27"), 5)  # look-aside TCAM, nested
    return fib, Resail(fib, min_bmp=13)


class TestBitMarking:
    def test_paper_table2_example(self):
        # 011 with pivot 6: append 1, shift left 3 -> 0111000.
        assert bit_mark(0b011, 3, pivot=6) == 0b0111000

    def test_unmark_roundtrip(self):
        for length in range(25):
            bits = (1 << length) - 1 if length else 0
            key = bit_mark(bits, length)
            assert unmark(key) == (bits, length)

    def test_keys_unique_across_lengths(self):
        # 0/1 and 00/2 and 000/3 must not collide.
        keys = {bit_mark(0, n) for n in range(25)}
        assert len(keys) == 25

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            bit_mark(0, 25)
        with pytest.raises(ValueError):
            unmark(0)


class TestLookup:
    def test_hierarchy_and_lookaside(self, small_resail):
        fib, resail = small_resail
        for text in ["10.9.9.9", "10.1.9.9", "10.1.2.5", "10.1.2.130",
                     "10.1.2.200", "11.0.0.1"]:
            assert resail.lookup(A(text)) == fib.lookup(A(text)), text

    def test_short_prefix_expansion(self, small_resail):
        fib, resail = small_resail
        # The /8 is shorter than min_bmp=13: served via expansion slots.
        assert resail.lookup(A("10.200.0.1")) == 1

    def test_matches_oracle(self, ipv4_fib, ipv4_addresses):
        resail = Resail(ipv4_fib, min_bmp=13)
        for addr in ipv4_addresses:
            assert resail.lookup(addr) == ipv4_fib.lookup(addr)

    def test_min_bmp_zero_no_expansion(self, ipv4_fib, ipv4_addresses):
        resail = Resail(ipv4_fib, min_bmp=0)
        for addr in ipv4_addresses[:400]:
            assert resail.lookup(addr) == ipv4_fib.lookup(addr)

    def test_invalid_min_bmp(self, ipv4_fib):
        with pytest.raises(ValueError):
            Resail(ipv4_fib, min_bmp=25)

    def test_rejects_ipv6(self):
        with pytest.raises(ValueError):
            Resail(Fib(64))


class TestUpdates:
    def test_insert_normal_length(self, small_resail):
        fib, resail = small_resail
        resail.insert(P("10.2.0.0/16"), 7)
        assert resail.lookup(A("10.2.1.1")) == 7

    def test_insert_delete_lookaside(self, small_resail):
        fib, resail = small_resail
        resail.insert(P("10.1.2.129/32"), 9)
        assert resail.lookup(A("10.1.2.129")) == 9
        resail.delete(P("10.1.2.129/32"))
        assert resail.lookup(A("10.1.2.129")) == 4

    def test_delete_restores_expansion_fallback(self, small_resail):
        fib, resail = small_resail
        resail.delete(P("10.1.0.0/16"))
        assert resail.lookup(A("10.1.9.9")) == 1  # /8 expansion again

    def test_short_prefix_precedence_on_insert_order(self):
        """A short prefix inserted after a longer one must not clobber it."""
        fib = Fib(32)
        resail = Resail(fib, min_bmp=13, hash_capacity=4096)
        resail.insert(P("10.1.0.0/16"), 2)
        resail.insert(P("10.0.0.0/8"), 1)  # expansion must skip /16 region
        assert resail.lookup(A("10.1.0.1")) == 2
        assert resail.lookup(A("10.2.0.1")) == 1

    def test_delete_short_refills_from_shorter(self):
        fib = Fib(32)
        resail = Resail(fib, min_bmp=13, hash_capacity=65536)
        resail.insert(P("10.0.0.0/8"), 1)
        resail.insert(P("10.128.0.0/9"), 2)
        assert resail.lookup(A("10.200.0.1")) == 2
        resail.delete(P("10.128.0.0/9"))
        assert resail.lookup(A("10.200.0.1")) == 1
        resail.delete(P("10.0.0.0/8"))
        assert resail.lookup(A("10.200.0.1")) is None

    def test_delete_min_bmp_prefix_with_short_cover(self):
        fib = Fib(32)
        resail = Resail(fib, min_bmp=13, hash_capacity=65536)
        resail.insert(P("10.0.0.0/8"), 1)
        resail.insert(P("10.8.0.0/13"), 3)
        assert resail.lookup(A("10.8.0.1")) == 3
        resail.delete(P("10.8.0.0/13"))
        assert resail.lookup(A("10.8.0.1")) == 1

    def test_delete_missing_raises(self, small_resail):
        _fib, resail = small_resail
        with pytest.raises(KeyError):
            resail.delete(P("99.0.0.0/16"))


class TestModel:
    def test_two_steps(self, small_resail):
        _fib, resail = small_resail
        assert resail.cram_metrics().steps == 2  # the paper's headline

    def test_cram_program_equivalence(self, small_resail):
        fib, resail = small_resail
        for text in ["10.9.9.9", "10.1.2.130", "10.1.2.200", "11.0.0.1",
                     "10.1.2.5", "10.200.0.1"]:
            assert resail.cram_lookup(A(text)) == resail.lookup(A(text)), text

    def test_idioms_declared(self, small_resail):
        _fib, resail = small_resail
        labels = {app.idiom.label for app in resail.idioms_applied()}
        assert labels == {"I3", "I6", "I7"}

    def test_layout_matches_paper_shape(self):
        layout = resail_layout_from_distribution(ipv4_length_distribution(), 13)
        ideal = map_to_ideal_rmt(layout)
        # Paper Table 6: 2 TCAM blocks, ~556 SRAM pages, 9 stages.
        assert ideal.tcam_blocks == 2
        assert 500 <= ideal.sram_pages <= 600
        assert ideal.stages == 9
        assert ideal.feasible

    def test_tofino_costs_more_but_fits(self):
        layout = resail_layout_from_distribution(ipv4_length_distribution(), 13)
        ideal = map_to_ideal_rmt(layout)
        tofino = map_to_tofino2(layout)
        assert tofino.sram_pages > ideal.sram_pages
        assert tofino.stages > ideal.stages
        assert tofino.tcam_blocks > ideal.tcam_blocks  # bitmask tables
        assert tofino.feasible

    def test_min_bmp_tradeoff(self):
        """Larger min_bmp: fewer bitmaps (parallel lookups), more SRAM."""
        dist = ipv4_length_distribution()
        lo = map_to_ideal_rmt(resail_layout_from_distribution(dist, 13))
        hi = map_to_ideal_rmt(resail_layout_from_distribution(dist, 20))
        lo_tables = len(resail_layout_from_distribution(dist, 13).phases[0].tables)
        hi_tables = len(resail_layout_from_distribution(dist, 20).phases[0].tables)
        assert hi_tables < lo_tables
        assert hi.sram_pages > lo.sram_pages  # expansion inflates the hash

    def test_layout_from_counts_hash_provisioning(self):
        layout = resail_layout_from_counts(long_prefixes=100, hash_entries=1000)
        hash_table = layout.phases[-1].tables[0]
        assert hash_table.entries == 1250  # d-left 25% overhead
