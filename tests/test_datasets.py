"""Unit tests for the synthetic BGP databases, growth model, and scaling."""

import pytest

from repro.datasets import (
    AS65000_LENGTH_COUNTS,
    AS131072_LENGTH_COUNTS,
    growth_series,
    ipv4_length_distribution,
    ipv4_table_size,
    ipv6_length_distribution,
    ipv6_table_size,
    multiverse_scale,
    multiverse_sizes,
    small_example_fib,
    synthesize_as65000,
    synthesize_as131072,
    years_until_ipv4_exceeds,
    years_until_ipv6_exceeds,
)
from repro.datasets.bgp import IPV6_UNIVERSE_BITS
from repro.prefix import Fib, LengthDistribution, from_bitstring


class TestHistograms:
    def test_ipv4_totals_near_930k(self):
        assert 920_000 <= sum(AS65000_LENGTH_COUNTS.values()) <= 940_000

    def test_ipv6_totals_near_190k(self):
        assert 185_000 <= sum(AS131072_LENGTH_COUNTS.values()) <= 200_000

    def test_ipv4_spikes_match_paper(self):
        dist = ipv4_length_distribution()
        assert dist.major_spike() == 24
        assert set(dist.spikes()) == {16, 20, 22, 24}

    def test_ipv6_spikes_match_paper(self):
        dist = ipv6_length_distribution()
        assert dist.major_spike() == 48
        assert set(dist.spikes()) == {28, 32, 36, 40, 44, 48}

    def test_p2_few_ipv4_prefixes_below_13(self):
        dist = ipv4_length_distribution()
        assert dist.count_shorter_than(13) / dist.total < 0.001

    def test_p3_majority_ipv6_longer_than_28(self):
        dist = ipv6_length_distribution()
        assert dist.fraction_longer_than(27) > 0.9

    def test_ipv4_long_prefix_count_matches_resail_tcam(self):
        # ~800 prefixes longer than /24 (RESAIL's 3.13 KB look-aside).
        assert ipv4_length_distribution().count_longer_than(24) == 800

    def test_scaled_histogram(self):
        dist = ipv4_length_distribution(scale=0.5)
        assert dist.total == pytest.approx(930_075 * 0.5, rel=0.01)


class TestGenerators:
    def test_deterministic(self):
        a = synthesize_as65000(scale=0.002, seed=7)
        b = synthesize_as65000.__wrapped__(0.002, 7) if hasattr(
            synthesize_as65000, "__wrapped__") else None
        c = synthesize_as65000(scale=0.002, seed=7)
        assert a is c  # cached
        assert list(a) == list(synthesize_as65000(scale=0.002, seed=7))

    def test_distribution_matches_target(self, ipv4_fib):
        dist = LengthDistribution.from_prefixes(ipv4_fib.prefixes(), 32)
        target = ipv4_length_distribution(scale=0.005)
        for length in range(33):
            assert dist.count(length) == target.count(length)

    def test_ipv6_universe_property(self, ipv6_fib):
        for prefix, _hop in ipv6_fib:
            assert prefix.value >> 61 == IPV6_UNIVERSE_BITS

    def test_value_clustering(self, ipv4_fib):
        """Prefixes >= /16 concentrate under a bounded slice pool."""
        slices = {p.value >> 16 for p in ipv4_fib.prefixes() if p.length >= 16}
        longer = sum(1 for p in ipv4_fib.prefixes() if p.length >= 16)
        assert len(slices) < longer / 2  # strong sharing

    def test_slice_popularity_is_heavy_tailed(self, ipv6_fib):
        from collections import Counter

        counts = Counter(
            p.value >> 40 for p in ipv6_fib.prefixes() if p.length >= 24
        )
        top = counts.most_common(1)[0][1]
        mean = sum(counts.values()) / len(counts)
        assert top > 10 * mean  # Zipf-like skew drives BSIC's worst case

    def test_example_fib_is_paper_table1(self):
        fib = small_example_fib()
        assert len(fib) == 8
        assert fib.get(from_bitstring("011", 8)) == 1  # entry 2 -> B
        assert fib.get(from_bitstring("10100011", 8)) == 0  # entry 8 -> A


class TestGrowth:
    def test_2023_anchors(self):
        assert ipv4_table_size(2023) == 930_000
        assert ipv6_table_size(2023) == 190_000

    def test_paper_2033_projections(self):
        # §1: IPv4 could reach 2M by 2033; IPv6 half a million even if linear.
        assert ipv4_table_size(2033) == pytest.approx(1_860_000, rel=0.01)
        assert ipv6_table_size(2033, "linear") == pytest.approx(500_000, rel=0.01)
        assert ipv6_table_size(2033) > 1_500_000  # exponential trend

    def test_backward_extrapolation_reaches_2003_levels(self):
        assert ipv4_table_size(2003, "linear") == pytest.approx(130_000, rel=0.05)
        assert ipv6_table_size(2003) < 10_000

    def test_series_monotonic(self):
        series = growth_series(2003, 2033)
        assert len(series) == 31
        assert all(b.ipv4_routes >= a.ipv4_routes for a, b in zip(series, series[1:]))
        assert all(b.ipv6_routes >= a.ipv6_routes for a, b in zip(series, series[1:]))

    def test_years_until_capacity(self):
        # RESAIL's 2.25M Tofino-2 capacity lasts ~12.7 years (the
        # paper's "next decade" claim).
        assert 10 < years_until_ipv4_exceeds(2_250_000) < 15
        assert 2.5 < years_until_ipv6_exceeds(390_000) < 4

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            ipv4_table_size(2030, "quadratic")


class TestMultiverse:
    def test_scales_by_integer_factor(self, ipv6_fib):
        scaled = multiverse_scale(ipv6_fib, 4)
        assert len(scaled) == 4 * len(ipv6_fib)

    def test_universe_bits_distinct(self, ipv6_fib):
        scaled = multiverse_scale(ipv6_fib, 8)
        universes = {p.value >> 61 for p in scaled.prefixes()}
        assert len(universes) == 8

    def test_routing_preserved_within_base_universe(self, ipv6_fib, ipv6_addresses):
        scaled = multiverse_scale(ipv6_fib, 2)
        for addr in ipv6_addresses[:200]:
            assert scaled.lookup(addr) == ipv6_fib.lookup(addr)

    def test_rejects_out_of_range(self, ipv6_fib):
        with pytest.raises(ValueError):
            multiverse_scale(ipv6_fib, 9)

    def test_rejects_multi_universe_base(self):
        fib = Fib(8)
        fib.insert(from_bitstring("000", 8), 1)
        fib.insert(from_bitstring("111", 8), 2)
        with pytest.raises(ValueError):
            multiverse_scale(fib, 2)

    def test_sizes_helper(self):
        assert multiverse_sizes(190_000, 3) == [190_000, 380_000, 570_000]
