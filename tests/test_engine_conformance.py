"""Cross-algorithm conformance: plan == interpreter == trie oracle.

Every behavioural simulator must give identical answers through all
three execution paths:

* the native ``algo.lookup`` walk,
* the per-packet CRAM interpreter (``algo.cram_lookup``),
* the compiled batch plan (``repro.core.plan``),
* the lane-compiled vector plan (``repro.core.vector``),
* the concurrent serving frontend (``repro.server.LookupServer``),

with and without the engine's FIB cache, before and after a churn
batch lands through :class:`repro.control.ManagedFib` — all against
the :class:`~repro.prefix.Fib` binary-trie oracle.

Width 8 runs everywhere (fast, exhaustive address space).  Widths 16
and 32 are marked ``slow`` and run in CI's conformance job
(``pytest -m slow``).  SAIL and RESAIL are IPv4 schemes and only
appear at width 32.
"""

import numpy as np
import pytest

from repro.algorithms import (
    Bsic,
    Dxr,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Poptrie,
    Resail,
    Sail,
)
from repro.control import CapacityGuard, ChurnGenerator, ManagedFib
from repro.core import compile_plan, compile_vector_plan
from repro.datasets import mixed_addresses
from repro.engine import BatchEngine
from repro.prefix import Fib, Prefix
from repro.server import LookupServer

#: Fixed multibit/MASHUP stride plans per width (must sum to width).
STRIDES = {8: [4, 4], 16: [8, 4, 4], 32: [16, 4, 4, 8]}
MASHUP_STRIDES = {8: [3, 2, 3], 16: [6, 5, 5], 32: None}  # None = default

MAKERS = {
    "ltcam": lambda fib: LogicalTcam(fib),
    "hibst": lambda fib: HiBst(fib),
    "bsic": lambda fib: Bsic(fib, k=fib.width // 2),
    "dxr": lambda fib: Dxr(fib, k=fib.width // 2),
    "multibit": lambda fib: MultibitTrie(fib, STRIDES[fib.width]),
    "mashup": lambda fib: Mashup(fib, MASHUP_STRIDES[fib.width]),
    "poptrie": lambda fib: Poptrie(fib, dp_bits=fib.width // 2),
    "sail": lambda fib: Sail(fib),
    "resail": lambda fib: Resail(fib, min_bmp=13),
}
IPV4_ONLY = {"sail", "resail"}

#: FIB sizes per width — big enough to populate every structure level,
#: small enough that the full 9-algorithm sweep stays quick.
FIB_SIZES = {8: 40, 16: 250, 32: 400}


def conformance_params():
    params = []
    for width in (8, 16, 32):
        for name in sorted(MAKERS):
            if name in IPV4_ONLY and width != 32:
                continue
            marks = [pytest.mark.slow] if width > 8 else []
            params.append(pytest.param(name, width, marks=marks,
                                       id=f"{name}-w{width}"))
    return params


def random_fib(width, size, seed):
    """A seeded random FIB spanning all prefix lengths 1..width."""
    rng = np.random.default_rng(seed)
    fib = Fib(width)
    while len(fib) < size:
        length = int(rng.integers(1, width + 1))
        bits = int(rng.integers(0, 1 << min(length, 63)))
        if length > 63:
            bits = (bits << (length - 63)) | int(
                rng.integers(0, 1 << (length - 63)))
        fib.insert(Prefix.from_bits(bits, length, width),
                   int(rng.integers(0, 64)))
    return fib


def addresses_for(fib, seed):
    if fib.width == 8:
        return list(range(256))  # exhaustive
    return mixed_addresses(fib, 300, hit_fraction=0.8, seed=seed)


@pytest.mark.parametrize("name,width", conformance_params())
class TestConformance:
    def test_plan_interpreter_native_agree(self, name, width):
        fib = random_fib(width, FIB_SIZES[width], seed=width)
        algo = MAKERS[name](fib)
        plan = compile_plan(algo)
        addresses = addresses_for(fib, seed=width + 1)
        for address in addresses:
            expected = fib.lookup(address)
            assert algo.lookup(address) == expected, hex(address)
            assert plan.lookup(address) == expected, hex(address)
        # The per-packet interpreter re-derives the schedule per call —
        # expensive, so probe a deterministic subset.
        for address in addresses[:: max(1, len(addresses) // 16)]:
            assert algo.cram_lookup(address) == fib.lookup(address)
        # The lane compiler must agree whole-batch — and every scheme
        # now lowers fully at lane-compatible widths: no scalar bridge,
        # vector hop extraction, so "auto" picks vector for all nine.
        vplan = compile_vector_plan(algo, plan=plan)
        expected = [fib.lookup(a) for a in addresses]
        assert vplan.lookup_batch_hops(addresses) == expected
        assert vplan.fully_lowered, vplan.describe()
        # The fused column: the fusion pass must not change answers.
        unfused = compile_vector_plan(algo, plan=plan, fuse=False)
        assert unfused.fused_steps == 0
        assert unfused.lookup_batch_hops(addresses) == expected
        assert len(vplan) <= len(unfused)

    def test_engine_cache_on_off_agree(self, name, width):
        fib = random_fib(width, FIB_SIZES[width], seed=width + 7)
        addresses = addresses_for(fib, seed=width + 8)
        plain = BatchEngine(MAKERS[name](fib))
        # Cache sized to the working set: pass 2 is served entirely
        # from it (a sequential scan through a smaller cache would
        # never re-hit — that thrash case is TestFibCache's business).
        cached = BatchEngine(MAKERS[name](fib), cache_size=len(addresses))
        expected = [fib.lookup(a) for a in addresses]
        assert plain.lookup_batch(addresses) == expected
        # Two passes: first fills the cache, second serves from it.
        assert cached.lookup_batch(addresses) == expected
        assert cached.lookup_batch(addresses) == expected
        assert cached.cache.stats.hits > 0
        # Same matrix through the vector backend.
        vec_plain = BatchEngine(MAKERS[name](fib), backend="vector")
        vec_cached = BatchEngine(MAKERS[name](fib), backend="vector",
                                 cache_size=len(addresses))
        assert vec_plain.active_backend == "vector"
        assert vec_plain.lookup_batch(addresses) == expected
        assert vec_cached.lookup_batch(addresses) == expected
        assert vec_cached.lookup_batch(addresses) == expected
        assert vec_cached.cache.stats.hits > 0

    def test_post_churn_conformance(self, name, width):
        base = random_fib(width, FIB_SIZES[width], seed=width + 13)
        # A permissive resource envelope: dense random FIBs can exceed
        # the default Tofino-2 budgets (SAIL at w32), and this test is
        # about conformance, not capacity planning.
        guard = CapacityGuard(tcam_blocks=1 << 30, sram_pages=1 << 30,
                              stage_budget=1 << 30,
                              dleft_overflow_limit=1 << 30)
        managed = ManagedFib(MAKERS[name], base, guard=guard)
        engine = BatchEngine.over_managed(managed, cache_size=64,
                                          name=f"conf-{name}",
                                          backend="auto")
        addresses = addresses_for(base, seed=width + 14)
        engine.lookup_batch(addresses)  # populate the cache pre-churn
        landed = 0
        for batch in ChurnGenerator(base, seed=width).batches(40, 10):
            if managed.apply_batch(batch) != "batch_rolled_back":
                landed += 1
        assert landed > 0
        # Post-churn: the plan was recompiled and stale entries dropped;
        # every path must now match the post-churn oracle.
        oracle = managed.oracle
        plan = compile_plan(managed.algo)
        for address in addresses:
            expected = oracle.lookup(address)
            assert engine.lookup(address) == expected, hex(address)
            assert plan.lookup(address) == expected, hex(address)
        for address, hop in engine.cache.items():
            assert hop == oracle.lookup(address), hex(address)
        # A freshly lane-compiled plan sees the post-churn snapshot too
        # (the engine's auto backend recompiled its own on every commit).
        vplan = compile_vector_plan(managed.algo)
        expected = [oracle.lookup(a) for a in addresses]
        assert vplan.lookup_batch_hops(addresses) == expected

    def test_server_serves_conformant_results(self, name, width):
        """The served column of the matrix: answers through the
        concurrent coalescing frontend (requests split across worker
        replicas, scattered back per request) equal the trie oracle —
        and therefore equal every other execution path above."""
        fib = random_fib(width, FIB_SIZES[width], seed=width + 21)
        addresses = addresses_for(fib, seed=width + 22)
        expected = [fib.lookup(a) for a in addresses]
        with LookupServer(MAKERS[name](fib), workers=2, max_batch=32,
                          max_wait_s=0.001, backend="auto",
                          name=f"conf-{name}") as server:
            handles = [server.submit(addresses[i:i + 7])
                       for i in range(0, len(addresses), 7)]
            server.flush()
            served = []
            for handle in handles:
                served.extend(handle.result(timeout=60))
        assert served == expected


# ---------------------------------------------------------------------------
# Golden kernel sequences: step names + fusion grouping per algorithm
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(MAKERS))
def test_kernel_sequence_golden(name, regen_golden):
    """The lane compiler's dispatch schedule is part of the contract:
    which steps lowered, how they fused, and in what order.  Pinned as
    byte-stable golden files; regenerate deliberately with

        PYTHONPATH=src python -m pytest tests/test_engine_conformance.py \\
            --regen-golden

    and commit the ``tests/golden/kernel_sequence_*.json`` diff."""
    from test_golden_tables import check_golden

    width = 32 if name in IPV4_ONLY else 8
    fib = random_fib(width, FIB_SIZES[width], seed=width)
    info = compile_vector_plan(MAKERS[name](fib)).describe()
    doc = {
        "algorithm": name,
        "width": width,
        "fully_lowered": info["fully_lowered"],
        "extract_mode": info["extract_mode"],
        "lowered_steps": info["lowered_steps"],
        "bridged_steps": info["bridged_steps"],
        "fused_groups": info["fused_groups"],
        "kernel_sequence": info["kernel_sequence"],
    }
    check_golden(f"kernel_sequence_{name}", doc, regen_golden)
