"""Unit tests for the CRAM model core: tables, steps, programs, metrics."""

import pytest

from repro.core import (
    Assoc,
    Bin,
    Const,
    CramMetrics,
    CramProgram,
    DependencyError,
    MatchKind,
    Reg,
    Statement,
    Step,
    TableSpec,
    Un,
    direct_index_table,
    exact_table,
    measure,
    ternary_table,
)
from repro.core.step import eval_expr


class TestTableAccounting:
    def test_ternary_keys_cost_tcam(self):
        t = ternary_table("t", key_width=32, entries=100, data_width=8)
        assert t.tcam_bits() == 3200
        assert t.sram_bits() == 800  # associated data only

    def test_exact_keys_cost_sram(self):
        t = exact_table("t", key_width=25, entries=100, data_width=8)
        assert t.tcam_bits() == 0
        assert t.sram_bits() == 100 * (25 + 8)

    def test_direct_index_keys_are_free(self):
        t = direct_index_table("t", key_width=10, data_width=8)
        assert t.is_direct_indexed
        assert t.sram_bits() == 1024 * 8

    def test_non_power_exact_not_direct(self):
        t = exact_table("t", key_width=10, entries=1000, data_width=8)
        assert not t.is_direct_indexed

    def test_ternary_needs_key(self):
        with pytest.raises(ValueError):
            ternary_table("t", key_width=0, entries=1, data_width=1)

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            exact_table("t", key_width=-1, entries=1, data_width=1)

    def test_lookup_without_backing_raises(self):
        t = exact_table("t", 4, 16, 8)
        with pytest.raises(RuntimeError):
            t.lookup(0)

    def test_lookup_default_on_miss(self):
        t = exact_table("t", 4, 16, 8, backing=lambda k: None, default=99)
        assert t.lookup(3) == 99


class TestExpressions:
    def test_eval_operand_kinds(self):
        state = {"r": 5}
        assert eval_expr(Reg("r"), state, ()) == 5
        assert eval_expr(Const(7), state, ()) == 7
        assert eval_expr(Assoc(0), state, (9, 10)) == 9
        assert eval_expr(Assoc(5), state, (9,)) == 0  # out of range -> 0

    def test_unary_and_binary(self):
        state = {"a": 6, "b": 2}
        assert eval_expr(Bin("+", Reg("a"), Reg("b")), state, ()) == 8
        assert eval_expr(Bin("<<", Reg("a"), Const(1)), state, ()) == 12
        assert eval_expr(Bin("==", Reg("a"), Const(6)), state, ()) == 1
        assert eval_expr(Un("!", Reg("a")), state, ()) == 0

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Bin("**", Reg("a"), Reg("b"))
        with pytest.raises(ValueError):
            Un("sqrt", Reg("a"))

    def test_none_register_reads_as_zero(self):
        assert eval_expr(Reg("missing"), {}, ()) == 0


class TestStepLegality:
    def test_intra_step_dependency_rejected(self):
        # Second statement reads what the first wrote: illegal (§2.1).
        with pytest.raises(ValueError):
            Step("s", statements=[
                Statement("x", Const(1)),
                Statement("y", Reg("x")),
            ])

    def test_parallel_statements_allowed(self):
        step = Step("s", statements=[
            Statement("x", Reg("a")),
            Statement("y", Reg("a")),
        ])
        assert step.reads == {"a"}
        assert step.writes == {"x", "y"}

    def test_statements_and_action_exclusive(self):
        with pytest.raises(ValueError):
            Step("s", statements=[Statement("x", Const(1))], action=lambda s, r: None)

    def test_statement_execution_snapshot_semantics(self):
        # Both statements must see the pre-step state.
        step = Step("s", statements=[
            Statement("x", Bin("+", Reg("y"), Const(1))),
            Statement("y", Bin("+", Reg("y"), Const(10))),
        ])
        state = {"x": 0, "y": 5}
        step.execute(state)
        assert state == {"x": 6, "y": 15}

    def test_conditional_statement(self):
        step = Step("s", statements=[
            Statement("x", Const(1), cond=Bin(">", Reg("a"), Const(10))),
        ])
        state = {"a": 5, "x": 0}
        step.execute(state)
        assert state["x"] == 0
        state = {"a": 50, "x": 0}
        step.execute(state)
        assert state["x"] == 1

    def test_conflicts_with(self):
        a = Step("a", reads=["r"], writes=["w"])
        b = Step("b", reads=["w"], writes=[])
        c = Step("c", reads=["r"], writes=[])
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)  # read-read is fine


class TestProgramDag:
    def make(self):
        prog = CramProgram("p")
        prog.add_step(Step("a", writes=["x"]))
        prog.add_step(Step("b", reads=["x"], writes=["y"]))
        prog.add_step(Step("c", reads=["x"], writes=["z"]))
        return prog

    def test_infer_dependencies_orders_conflicts(self):
        prog = self.make()
        prog.infer_dependencies()
        prog.validate()
        assert prog.critical_path_length() == 2  # a -> {b, c} in parallel

    def test_unordered_conflict_rejected(self):
        prog = self.make()
        with pytest.raises(DependencyError):
            prog.validate()

    def test_cycle_rejected(self):
        prog = self.make()
        prog.add_dependency("a", "b")
        with pytest.raises(DependencyError):
            prog.add_dependency("b", "a")

    def test_self_dependency_rejected(self):
        prog = self.make()
        with pytest.raises(ValueError):
            prog.add_dependency("a", "a")

    def test_duplicate_step_rejected(self):
        prog = self.make()
        with pytest.raises(ValueError):
            prog.add_step(Step("a"))

    def test_unknown_dependency_rejected(self):
        prog = self.make()
        with pytest.raises(KeyError):
            prog.add_dependency("a", "nope")

    def test_critical_path_and_schedule(self):
        prog = self.make()
        prog.infer_dependencies()
        waves = prog.parallel_schedule()
        assert waves == [["a"], ["b", "c"]]
        assert prog.critical_path()[0] == "a"

    def test_write_write_conflict_needs_order(self):
        prog = CramProgram("p")
        prog.add_step(Step("a", writes=["x"]))
        prog.add_step(Step("b", writes=["x"]))
        with pytest.raises(DependencyError):
            prog.validate()
        prog.add_dependency("a", "b")
        prog.validate()


class TestMetrics:
    def test_measure_sums_tables(self):
        prog = CramProgram("p")
        t1 = ternary_table("t1", 32, 10, 8)
        t2 = exact_table("t2", 16, 100, 8)
        prog.add_step(Step("a", table=t1, writes=["x"]))
        prog.add_step(Step("b", table=t2, reads=["x"]), after=["a"])
        m = measure(prog)
        assert m.tcam_bits == 320
        assert m.sram_bits == 10 * 8 + 100 * 24
        assert m.steps == 2

    def test_shared_table_counted_once(self):
        prog = CramProgram("p")
        shared = exact_table("t", 16, 100, 8)
        prog.add_step(Step("a", table=shared, writes=["x"]))
        prog.add_step(Step("b", table=shared, reads=["x"], writes=["x"]), after=["a"])
        m = measure(prog)
        assert m.sram_bits == 100 * 24

    def test_metrics_add_takes_max_steps(self):
        a = CramMetrics(10, 20, 3)
        b = CramMetrics(1, 2, 5)
        c = a + b
        assert (c.tcam_bits, c.sram_bits, c.steps) == (11, 22, 5)

    def test_fractional_units(self):
        m = CramMetrics(44 * 512, 128 * 1024, 1)
        assert m.tcam_blocks == pytest.approx(1.0)
        assert m.sram_pages == pytest.approx(1.0)
