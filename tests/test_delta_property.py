"""End-to-end properties of the incremental commit pipeline.

The contract under test: a structure grown by *deltas* is
indistinguishable from one built *from scratch* over the same routing
table.  Hypothesis drives arbitrary churn through the delta-capable
algorithms (SAIL, RESAIL, DXR) and asserts, after every commit:

    patched engine == from-scratch plan == interpreter == trie oracle

including after rollbacks (the punitive-guard leg) and after a process
worker is killed mid-stream and resynced from a snapshot (the serving
leg).  Alongside the pipeline property live the unit laws it rests on:
``DeltaOp.inverse`` round-trips, ``FibDelta.wire_ops`` net-effect
semantics, and the incremental-freeze write logs that make plan
patching O(delta) instead of O(table).
"""

import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.memory.dleft as dleft_module
import repro.memory.sram as sram_module
from repro.algorithms import Resail
from repro.chaos import ChaosPlan
from repro.cli import ALGORITHM_FACTORIES
from repro.control import (
    ANNOUNCE,
    WITHDRAW,
    CapacityGuard,
    ChurnGenerator,
    DeltaOp,
    FibDelta,
    ManagedFib,
    RuntimePolicy,
)
from repro.core import compile_plan
from repro.core.vector import SparseMapView, map_view, patch_sparse_view
from repro.datasets import synthesize_as65000, uniform_addresses
from repro.engine import BatchEngine
from repro.memory.dleft import DLeftHashTable
from repro.memory.sram import Bitmap
from repro.prefix import Fib, Prefix
from repro.server import LookupServer

WIDTH = 8


def _delta_factories():
    out = []
    for name, factory in sorted(ALGORITHM_FACTORIES.items()):
        if factory(Fib(32)).supports_delta:
            out.append((name, factory))
    return out


#: The algorithms with a whole-batch ``apply_delta`` path.
DELTA_CAPABLE = _delta_factories()

#: Quiet runtime: no shadow checks, no guard — the property asserts
#: correctness itself, through every compiled path.
QUIET = dict(check_every=0, guard_every=0)


# ---------------------------------------------------------------------------
# Delta algebra: inverse round-trips and wire_ops net effect
# ---------------------------------------------------------------------------

#: A churn script over a tiny prefix universe: (raw bits, raw length,
#: announce?, hop).  Withdrawals of absent prefixes are legal in
#: wire_ops (they net out) but are redirected to announcements in the
#: inverse test, where ops must be valid against the staged table.
op_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=(1 << WIDTH) - 1),
              st.integers(min_value=0, max_value=WIDTH),
              st.booleans(),
              st.integers(min_value=1, max_value=31)),
    min_size=0, max_size=24)


def _script_to_delta(script, table, *, strict):
    """Replay a raw script against ``table`` (a {(bits, length): hop}
    dict), building the DeltaOps exactly like the runtime does —
    ``prev_hop`` captured from the staged state before each op."""
    ops = []
    for raw_bits, length, announce, hop in script:
        bits = raw_bits & (((1 << length) - 1) if length else 0)
        key = (bits, length)
        prev = table.get(key)
        if not announce and strict and prev is None:
            announce = True  # withdrawals must name live routes
        prefix = Prefix.from_bits(bits, length, WIDTH)
        if announce:
            ops.append(DeltaOp(ANNOUNCE, prefix, next_hop=hop,
                               prev_hop=prev))
            table[key] = hop
        else:
            ops.append(DeltaOp(WITHDRAW, prefix, prev_hop=prev))
            table.pop(key, None)
    return FibDelta(ops)


def _apply_delta(table, delta):
    for op in delta:
        key = (op.prefix.bits, op.prefix.length)
        if op.action == ANNOUNCE:
            table[key] = op.next_hop
        else:
            table.pop(key, None)


class TestDeltaAlgebra:
    @given(script=op_scripts)
    @settings(max_examples=50, deadline=None)
    def test_inverse_round_trips(self, script):
        """delta then delta.inverse() is the identity on the table."""
        table = {(0, 0): 7, (1, 1): 3}
        before = dict(table)
        delta = _script_to_delta(script, table, strict=True)
        after = dict(table)
        _apply_delta(table, delta.inverse())
        assert table == before
        # And the inverse of the inverse lands back on the post state.
        _apply_delta(table, delta.inverse().inverse())
        assert table == after

    @given(script=op_scripts)
    @settings(max_examples=50, deadline=None)
    def test_wire_ops_are_the_net_effect(self, script):
        """Applying wire_ops to the pre-batch table yields the
        post-batch table; prefixes with no net change never ship."""
        table = {(0, 0): 7, (1, 1): 3}
        before = dict(table)
        delta = _script_to_delta(script, table, strict=False)
        wire = delta.wire_ops()
        assert wire == sorted(wire)  # deterministic shipping order
        replayed = dict(before)
        for bits, length, hop in wire:
            if hop is None:
                replayed.pop((bits, length), None)
            else:
                replayed[(bits, length)] = hop
        assert replayed == table
        # Net no-ops are dropped: every shipped triple changes state.
        for bits, length, hop in wire:
            assert before.get((bits, length)) != hop
        # Last-op-per-prefix wins: at most one triple per prefix.
        assert len({(b, l) for b, l, _h in wire}) == len(wire)

    def test_wire_ops_drop_announce_withdraw_pair(self):
        prefix = Prefix.from_bits(0b1010, 4, WIDTH)
        delta = FibDelta([
            DeltaOp(ANNOUNCE, prefix, next_hop=9, prev_hop=None),
            DeltaOp(WITHDRAW, prefix, prev_hop=9),
        ])
        assert delta.wire_ops() == []
        assert delta.prefixes() == {prefix}


# ---------------------------------------------------------------------------
# The pipeline property: delta-grown == built-from-scratch
# ---------------------------------------------------------------------------


def _assert_delta_equals_scratch(managed, engine, factory, probes):
    """The committed structure, served through the patched engine, must
    answer exactly like a from-scratch build over the same oracle —
    through the vector plan, the scalar plan, and the interpreter."""
    oracle = managed.oracle
    expected = [oracle.lookup(a) for a in probes]
    assert engine.lookup_batch(probes) == expected
    scratch = factory(Fib(32, list(oracle)))
    scratch_plan = compile_plan(scratch)
    assert [scratch_plan.lookup(a) for a in probes] == expected
    # The per-packet interpreter on a deterministic probe subset.
    for address in probes[:: max(1, len(probes) // 8)]:
        assert managed.algo.cram_lookup(address) == oracle.lookup(address)


@pytest.mark.parametrize(("name", "factory"), DELTA_CAPABLE,
                         ids=[n for n, _f in DELTA_CAPABLE])
@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_delta_built_equals_scratch_built(name, factory, seed):
    base = synthesize_as65000(scale=0.001)
    managed = ManagedFib(factory, base, policy=RuntimePolicy(**QUIET),
                         check_seed=seed)
    engine = BatchEngine.over_managed(managed, backend="auto",
                                      name=f"delta-prop-{name}")
    probes = uniform_addresses(32, 96, seed=seed)
    commits = 0
    for batch in ChurnGenerator(base, seed=seed).batches(32, 8):
        outcome = managed.apply_batch(batch)
        assert outcome in {"batch_applied", "batch_rebuilt"}
        commits += 1
        _assert_delta_equals_scratch(managed, engine, factory, probes)
    counters = managed.registry.snapshot()["counters"]

    def total(metric):
        return sum(counters.get(metric, {}).values())

    patches = total("repro_engine_plan_patches_total")
    recompiles = total("repro_engine_plan_recompiles_total")
    # Every commit refreshed the engine exactly once, one way or the
    # other; in-place appliers must have patched at least once.
    assert patches + recompiles == commits
    if name in ("sail", "resail"):
        assert patches == commits


@pytest.mark.parametrize(("name", "factory"), DELTA_CAPABLE,
                         ids=[n for n, _f in DELTA_CAPABLE])
@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_delta_built_equals_scratch_after_rollback(name, factory, seed):
    """Under a punitive guard most batches roll back; whatever the
    outcome, the served structure must keep matching a from-scratch
    build of the committed oracle."""
    guard = CapacityGuard(tcam_blocks=0, sram_pages=0, stage_budget=1,
                          dleft_overflow_limit=0)
    base = synthesize_as65000(scale=0.001)
    managed = ManagedFib(factory, base, guard=guard,
                         policy=RuntimePolicy(**QUIET), check_seed=seed)
    engine = BatchEngine.over_managed(managed, backend="auto",
                                      name=f"rollback-prop-{name}")
    probes = uniform_addresses(32, 96, seed=seed)
    for batch in ChurnGenerator(base, seed=seed).batches(24, 8):
        managed.apply_batch(batch)
        _assert_delta_equals_scratch(managed, engine, factory, probes)


def test_patch_threshold_escape_hatch():
    """Past the patch threshold the engine must fall back to a full
    recompile — and a threshold of 0 disables patching outright."""
    base = synthesize_as65000(scale=0.001)
    results = {}
    for threshold in (256, 2, 0):
        managed = ManagedFib(lambda fib: Resail(fib, min_bmp=13,
                                                hash_capacity=1 << 16),
                             base, policy=RuntimePolicy(**QUIET),
                             check_seed=5)
        engine = BatchEngine.over_managed(
            managed, backend="auto", patch_threshold=threshold,
            name=f"threshold-{threshold}")
        for batch in ChurnGenerator(base, seed=5).batches(24, 8):
            assert managed.apply_batch(batch) == "batch_applied"
        counters = managed.registry.snapshot()["counters"]
        label = f'{{engine="threshold-{threshold}"}}'
        results[threshold] = (
            counters.get("repro_engine_plan_patches_total",
                         {}).get(label, 0),
            counters.get("repro_engine_plan_recompiles_total",
                         {}).get(label, 0),
            engine.lookup_batch(uniform_addresses(32, 32, seed=5)),
        )
    # Batches of 8 fit a 256 threshold (all patches), overflow a 2
    # threshold (all recompiles), and 0 disables the patch path.
    assert results[256][:2] == (3, 0)
    assert results[2][:2] == (0, 3)
    assert results[0][:2] == (0, 3)
    # ... without ever changing the answers.
    assert results[256][2] == results[2][2] == results[0][2]


# ---------------------------------------------------------------------------
# Incremental freeze: write-log replay == full re-freeze
# ---------------------------------------------------------------------------

bit_scripts = st.lists(
    st.tuples(st.integers(min_value=0, max_value=255), st.booleans()),
    min_size=0, max_size=64)


class TestIncrementalFreeze:
    @given(initial=bit_scripts, churn=bit_scripts)
    @settings(max_examples=30, deadline=None)
    def test_bitmap_replay_equals_full_freeze(self, initial, churn):
        bitmap = Bitmap(8)
        for index, value in initial:
            bitmap.set(index, value)
        reader = bitmap.plan_reader()
        view = bitmap.vector_reader()
        for index, value in churn:
            bitmap.set(index, value)
        resynced = bitmap.plan_reader(prev=reader)
        assert resynced is reader  # caught up in place, not re-copied
        fresh = bitmap.plan_reader()
        assert [resynced(i) for i in range(256)] == \
            [fresh(i) for i in range(256)] == \
            [bitmap.test(i) for i in range(256)]
        revived = bitmap.vector_reader(prev=view)
        assert revived is view
        assert np.array_equal(revived.packed,
                              bitmap.vector_reader().packed)

    def test_bitmap_log_trim_falls_back_to_full_copy(self, monkeypatch):
        monkeypatch.setattr(sram_module, "FREEZE_LOG_CAP", 4)
        bitmap = Bitmap(8)
        stale = bitmap.plan_reader()
        for index in range(32):  # way past the cap: the tail is gone
            bitmap.set(index)
        resynced = bitmap.plan_reader(prev=stale)
        assert resynced is not stale  # full copy, not a replay
        assert [resynced(i) for i in range(256)] == \
            [bitmap.test(i) for i in range(256)]

    @given(script=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63),
                  st.integers(min_value=0, max_value=15)),
        min_size=0, max_size=48))
    @settings(max_examples=30, deadline=None)
    def test_dleft_replay_equals_full_freeze(self, script):
        table = DLeftHashTable(key_width=16, data_width=8, capacity=128)
        for key in (1, 2, 3):
            table.insert(key, key)
        reader = table.plan_reader()
        view = table.vector_reader()
        for key, data in script:
            if data == 0:
                try:
                    table.delete(key)
                except KeyError:
                    pass
            else:
                table.insert(key, data)
        expected = table._flatten()
        resynced = table.plan_reader(prev=reader)
        assert resynced is reader
        assert {k: resynced(k) for k in range(64)} == \
            {k: expected.get(k) for k in range(64)}
        revived = table.vector_reader(prev=view)
        assert revived is view
        assert dict(zip(revived.keys.tolist(),
                        revived.data.tolist())) == expected

    def test_dleft_grow_invalidates_outstanding_snapshots(self):
        table = DLeftHashTable(key_width=16, data_width=8, capacity=8,
                               auto_grow=True)
        table.insert(1, 1)
        reader = table.plan_reader()
        for key in range(2, 40):  # trips auto-grow (rehash) mid-churn
            table.insert(key, key & 0xFF or 1)
        resynced = table.plan_reader(prev=reader)
        expected = table._flatten()
        assert {k: resynced(k) for k in range(40)} == \
            {k: expected.get(k) for k in range(40)}

    @given(slots=st.dictionaries(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=63), max_size=24),
        updates=st.dictionaries(
        st.integers(min_value=0, max_value=200),
        st.one_of(st.none(), st.integers(min_value=0, max_value=63)),
        max_size=24))
    @settings(max_examples=50, deadline=None)
    def test_patch_sparse_view_equals_rebuild(self, slots, updates):
        view = map_view(dict(slots))
        assert isinstance(view, SparseMapView)
        patch_sparse_view(view, updates)
        merged = dict(slots)
        for key, value in updates.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        rebuilt = map_view(merged)
        assert np.array_equal(view.keys, rebuilt.keys)
        assert np.array_equal(view.data, rebuilt.data)


# ---------------------------------------------------------------------------
# Worker-restart resync: delta shipping survives a mid-stream kill
# ---------------------------------------------------------------------------


def test_process_worker_restart_resyncs_then_chains_deltas():
    """Kill a process worker mid-stream: the supervisor restarts it
    from a full snapshot, after which commit deltas chain onto the
    resynced replica — and every answer keeps matching the oracle."""
    base = synthesize_as65000(scale=0.001)
    managed = ManagedFib(lambda fib: Resail(fib, min_bmp=13,
                                            hash_capacity=1 << 16),
                         base, policy=RuntimePolicy(**QUIET), check_seed=11)
    chaos = ChaosPlan([], script=[("kill", 0, 2)])
    probes = uniform_addresses(32, 48, seed=11)

    def total(metric):
        counters = managed.registry.snapshot()["counters"]
        return sum(counters.get(metric, {}).values())

    batches = list(ChurnGenerator(base, seed=11).batches(40, 8))
    with LookupServer(managed=managed, workers=2, mode="process",
                      max_batch=32, chaos=chaos) as server:
        for batch in batches[:-1]:
            assert managed.apply_batch(batch) == "batch_applied"
            for _ in range(2):  # march worker 0 toward the scripted kill
                expected = [managed.oracle.lookup(a) for a in probes]
                assert server.lookup_batch(probes, timeout=60) == expected
        # The supervisor restarts the killed worker on a backoff timer;
        # keep serving until it has (every answer must stay correct).
        deadline = time.monotonic() + 30
        while total("repro_server_restarts_total") < 1:
            assert time.monotonic() < deadline, "worker never restarted"
            expected = [managed.oracle.lookup(a) for a in probes]
            assert server.lookup_batch(probes, timeout=60) == expected
            time.sleep(0.05)
        # One more committed delta must chain onto the resynced replica.
        assert managed.apply_batch(batches[-1]) == "batch_applied"
        expected = [managed.oracle.lookup(a) for a in probes]
        assert server.lookup_batch(probes, timeout=60) == expected
    assert total("repro_server_worker_deaths_total") >= 1
    assert total("repro_server_restarts_total") >= 1
    assert total("repro_server_delta_bytes_total") > 0  # steady state ships deltas
