"""Unit tests for the fault-tolerance layer (:mod:`repro.server.supervisor`).

Everything timing-related runs on a :class:`repro.obs.FakeClock`:
health-window trims, restart backoffs, request deadlines and client
retry sleeps all advance virtual time only — no test here waits on the
wall clock for a timer to fire.
"""

import random
import threading

import pytest

from repro.algorithms.hibst import HiBst
from repro.obs import FakeClock, MetricsRegistry
from repro.prefix.prefix import Prefix
from repro.prefix.trie import Fib
from repro.server import (
    CoalescedBatch,
    LookupServer,
    PendingLookup,
    RequestShed,
    RequestTimeout,
    RestartPolicy,
    RetryingClient,
    RetryPolicy,
    ServerClosed,
    ServerError,
    ServingHealth,
    ServingState,
    ThreadWorkerPool,
    WorkerCrash,
    WorkerSupervisor,
)

WIDTH = 8


def small_fib(seed=3, size=40):
    rng = random.Random(seed)
    fib = Fib(WIDTH)
    while len(fib) < size:
        length = rng.randint(1, WIDTH)
        fib.insert(Prefix.from_bits(rng.getrandbits(length), length, WIDTH),
                   rng.randint(1, 99))
    return fib


# ---------------------------------------------------------------------------
# ServingHealth
# ---------------------------------------------------------------------------


class TestServingHealth:
    def test_starts_healthy(self):
        health = ServingHealth(FakeClock(), queue_capacity=8)
        assert health.state is ServingState.HEALTHY

    def test_queue_depth_escalates_immediately(self):
        health = ServingHealth(FakeClock(), queue_capacity=8,
                               degraded_depth=0.75, brownout_depth=2.0)
        health.note_depth(6)  # 0.75 of 8
        assert health.state is ServingState.DEGRADED
        health.note_depth(16)  # 2.0 of 8
        assert health.state is ServingState.BROWNOUT

    def test_restart_burst_escalates(self):
        health = ServingHealth(FakeClock(), degraded_restarts=2,
                               brownout_restarts=4)
        health.note_restart()
        assert health.state is ServingState.HEALTHY
        health.note_restart()
        assert health.state is ServingState.DEGRADED
        health.note_restart()
        health.note_restart()
        assert health.state is ServingState.BROWNOUT

    def test_deadline_miss_rate_escalates(self):
        health = ServingHealth(FakeClock(), degraded_miss_rate=0.05,
                               brownout_miss_rate=0.5)
        for _ in range(20):
            health.note_request()
        health.note_deadline_miss()  # 1/20 = 0.05
        assert health.state is ServingState.DEGRADED

    def test_recovery_needs_calm_and_steps_one_level(self):
        clock = FakeClock()
        health = ServingHealth(clock, queue_capacity=8, window_s=1.0,
                               recovery_s=1.0, brownout_restarts=4)
        for _ in range(4):
            health.note_restart()
        assert health.state is ServingState.BROWNOUT
        # The restart window expires; the first calm refresh only
        # starts the recovery timer.
        clock.advance(1.5)
        assert health.refresh() is ServingState.BROWNOUT
        # One recovery_s of calm steps down exactly ONE level.
        clock.advance(1.0)
        assert health.refresh() is ServingState.DEGRADED
        clock.advance(1.0)
        assert health.refresh() is ServingState.HEALTHY
        assert health.transitions == 4  # 2 up (D, B) + 2 down

    def test_new_trouble_resets_the_calm_timer(self):
        clock = FakeClock()
        health = ServingHealth(clock, window_s=1.0, recovery_s=1.0,
                               degraded_restarts=1)
        health.note_restart()
        assert health.state is ServingState.DEGRADED
        clock.advance(1.5)
        health.refresh()  # calm starts
        clock.advance(0.5)
        health.note_restart()  # trouble again: calm timer must reset
        assert health.state is ServingState.DEGRADED
        clock.advance(1.5)
        health.refresh()
        clock.advance(0.9)
        assert health.refresh() is ServingState.DEGRADED  # not calm enough
        clock.advance(0.1)
        assert health.refresh() is ServingState.HEALTHY

    def test_transition_callback_fires(self):
        seen = []
        health = ServingHealth(FakeClock(), degraded_restarts=1,
                               on_transition=lambda a, b: seen.append((a, b)))
        health.note_restart()
        assert seen == [(ServingState.HEALTHY, ServingState.DEGRADED)]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ServingHealth(FakeClock(), queue_capacity=0)


# ---------------------------------------------------------------------------
# RestartPolicy
# ---------------------------------------------------------------------------


class TestRestartPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RestartPolicy(FakeClock(), base_backoff_s=0.1,
                               max_backoff_s=0.5, budget=10, jitter=0.0)
        delays = [policy.next_delay(0) for _ in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_budget_exhaustion_returns_none(self):
        policy = RestartPolicy(FakeClock(), budget=2, jitter=0.0)
        assert policy.next_delay(1) is not None
        assert policy.next_delay(1) is not None
        assert policy.next_delay(1) is None
        # Budgets are per worker: another worker is unaffected.
        assert policy.next_delay(2) is not None

    def test_window_forgives_old_restarts(self):
        clock = FakeClock()
        policy = RestartPolicy(clock, budget=1, window_s=10.0, jitter=0.0)
        assert policy.next_delay(0) is not None
        assert policy.next_delay(0) is None
        clock.advance(11.0)
        assert policy.next_delay(0) is not None
        assert policy.restarts_in_window(0) == 1

    def test_jitter_is_deterministic_per_seed(self):
        a = RestartPolicy(FakeClock(), seed=7, jitter=0.5)
        b = RestartPolicy(FakeClock(), seed=7, jitter=0.5)
        assert [a.next_delay(0) for _ in range(3)] == \
            [b.next_delay(0) for _ in range(3)]
        c = RestartPolicy(FakeClock(), seed=8, jitter=0.5)
        assert a._rng(1).random() != c._rng(1).random()

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            RestartPolicy(FakeClock(), budget=-1)


# ---------------------------------------------------------------------------
# WorkerSupervisor (against a fake pool)
# ---------------------------------------------------------------------------


class FakePool:
    def __init__(self, accept_requeue=True, restart_ok=True):
        self.requeued = []
        self.restarted = []
        self.accept_requeue = accept_requeue
        self.restart_ok = restart_ok

    def requeue(self, batch):
        self.requeued.append(batch)
        if not self.accept_requeue:
            batch.fail(RequestShed("fake pool refused"))
            return False
        return True

    def restart_worker(self, worker):
        self.restarted.append(worker)
        return self.restart_ok


def make_batch(addresses=(1, 2)):
    handle = PendingLookup(list(addresses), 0.0)
    return handle, CoalescedBatch(list(addresses),
                                  [(handle, 0, 0, len(addresses))], "size")


class TestWorkerSupervisor:
    def test_requeues_orphans_and_restarts_after_backoff(self):
        clock = FakeClock()
        pool = FakePool()
        sup = WorkerSupervisor(pool, clock,
                               policy=RestartPolicy(clock, base_backoff_s=0.1,
                                                    jitter=0.0))
        _handle, batch = make_batch()
        sup.worker_exited(1, WorkerCrash("boom"), batch)
        assert pool.requeued == [batch]
        assert sup.requeued_batches == 1
        assert pool.restarted == []  # still in backoff
        clock.advance(0.2)
        assert pool.restarted == [1]
        assert sup.deaths == 1 and sup.restarts == 1

    def test_accepts_orphan_lists_and_none(self):
        clock = FakeClock()
        pool = FakePool()
        sup = WorkerSupervisor(pool, clock, policy=RestartPolicy(clock))
        _h1, b1 = make_batch()
        _h2, b2 = make_batch()
        sup.worker_exited(0, WorkerCrash("x"), [b1, b2])
        sup.worker_exited(0, WorkerCrash("y"), None)
        assert pool.requeued == [b1, b2]
        assert sup.deaths == 2

    def test_gives_up_when_budget_spent(self):
        clock = FakeClock()
        pool = FakePool()
        gave_up = []
        sup = WorkerSupervisor(
            pool, clock,
            policy=RestartPolicy(clock, budget=1, jitter=0.0),
            on_giveup=gave_up.append)
        sup.worker_exited(2, WorkerCrash("a"), None)
        clock.advance(1.0)
        sup.worker_exited(2, WorkerCrash("b"), None)
        clock.advance(10.0)
        assert pool.restarted == [2]  # only the first death restarted
        assert sup.giveups == 1 and sup.given_up == [2]
        assert gave_up == [2]

    def test_health_sees_every_death(self):
        clock = FakeClock()
        health = ServingHealth(clock, degraded_restarts=2)
        sup = WorkerSupervisor(FakePool(), clock,
                               policy=RestartPolicy(clock), health=health)
        sup.worker_exited(0, WorkerCrash("x"), None)
        sup.worker_exited(1, WorkerCrash("y"), None)
        assert health.state is ServingState.DEGRADED

    def test_close_cancels_pending_restarts(self):
        clock = FakeClock()
        pool = FakePool()
        sup = WorkerSupervisor(pool, clock,
                               policy=RestartPolicy(clock, jitter=0.0))
        sup.worker_exited(0, WorkerCrash("x"), None)
        sup.close()
        clock.advance(10.0)
        assert pool.restarted == []
        sup.close()  # idempotent

    def test_death_after_close_fails_orphans(self):
        clock = FakeClock()
        pool = FakePool()
        sup = WorkerSupervisor(pool, clock, policy=RestartPolicy(clock))
        sup.close()
        handle, batch = make_batch()
        sup.worker_exited(0, WorkerCrash("x"), batch)
        with pytest.raises(ServerError):
            handle.result(0)
        assert pool.requeued == []  # never re-queued into a closed pool


# ---------------------------------------------------------------------------
# RetryPolicy / RetryingClient
# ---------------------------------------------------------------------------


class FlakyServer:
    """Duck-typed server: fails the first N submits, then answers."""

    def __init__(self, failures, clock):
        self.failures = list(failures)
        self.clock = clock
        self.submits = 0

    def submit(self, addresses):
        self.submits += 1
        handle = PendingLookup(list(addresses), self.clock.now())
        if self.failures:
            handle._fail(self.failures.pop(0))
        else:
            handle._scatter(0, [7] * len(handle.addresses), 0)
        return handle


class TestRetrying:
    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(RequestTimeout("t"))
        assert policy.retryable(RequestShed("s"))
        assert policy.retryable(WorkerCrash("c"))
        assert not policy.retryable(ServerClosed("gone"))
        assert not policy.retryable(RuntimeError("engine bug"))

    def test_retry_safe_attribute_is_honoured(self):
        from repro.chaos import ChaosBatchFault
        assert RetryPolicy().retryable(ChaosBatchFault("injected"))

    def test_client_retries_until_success(self):
        clock = FakeClock()
        server = FlakyServer([RequestTimeout("t"), RequestShed("s")], clock)
        client = RetryingClient(server, policy=RetryPolicy(attempts=3),
                                clock=clock)
        assert client.lookup([1, 2]) == [7, 7]
        assert server.submits == 3
        assert client.retries == 2
        assert clock.now() > 0  # backoffs consumed virtual time

    def test_client_exhausts_and_raises_last_error(self):
        clock = FakeClock()
        server = FlakyServer([RequestTimeout(f"t{i}") for i in range(5)],
                             clock)
        client = RetryingClient(server, policy=RetryPolicy(attempts=2),
                                clock=clock)
        with pytest.raises(RequestTimeout, match="t1"):
            client.lookup([1])
        assert client.exhausted == 1

    def test_client_never_retries_closed(self):
        clock = FakeClock()
        server = FlakyServer([ServerClosed("gone")], clock)
        client = RetryingClient(server, policy=RetryPolicy(attempts=5),
                                clock=clock)
        with pytest.raises(ServerClosed):
            client.lookup([1])
        assert server.submits == 1 and client.retries == 0

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


# ---------------------------------------------------------------------------
# Server-level robustness (deadlines, brownout, degradation)
# ---------------------------------------------------------------------------


class NeverEngine:
    """An engine that never answers (simulates a wedged worker)."""

    def __init__(self):
        self.release = threading.Event()

    def lookup_batch(self, addresses):
        assert self.release.wait(30)
        return [None] * len(addresses)


class TestServerRobustness:
    def test_deadline_fails_future_with_request_timeout(self):
        clock = FakeClock()
        fib = small_fib()
        registry = MetricsRegistry()
        server = LookupServer(HiBst(fib), workers=1, registry=registry,
                              clock=clock, request_deadline_s=0.5,
                              max_wait_s=10.0)
        with server:
            # Submit but never flush: the batch sits in the coalescer
            # until the deadline timer fires on the fake clock.
            handle = server.submit([1, 2, 3])
            clock.advance(1.0)
            with pytest.raises(RequestTimeout):
                handle.result(0)
            counters = registry.snapshot()["counters"]
            assert sum(counters[
                "repro_server_deadline_misses_total"].values()) == 1

    def test_served_request_disarms_its_deadline(self):
        clock = FakeClock()
        fib = small_fib()
        server = LookupServer(HiBst(fib), workers=1, clock=clock,
                              request_deadline_s=0.5)
        with server:
            hops = server.lookup_batch([1, 2], timeout=30)
            assert hops == [fib.lookup(1), fib.lookup(2)]
            assert clock.pending_timers() == 0  # timer disarmed
            clock.advance(1.0)  # firing window passes harmlessly

    def test_brownout_serves_cache_hits_and_sheds_misses(self):
        clock = FakeClock()
        fib = small_fib()
        registry = MetricsRegistry()
        server = LookupServer(HiBst(fib), workers=1, clock=clock,
                              registry=registry)
        with server:
            warm = server.lookup_batch([5, 6], timeout=30)
            # Force BROWNOUT through the health feeds.
            for _ in range(4):
                server.health.note_restart()
            assert server.health_state is ServingState.BROWNOUT
            # Cache hit: answered immediately, correct hops.
            hit = server.submit([5, 6])
            assert hit.result(0) == warm
            # Cache miss: shed with a typed error.
            miss = server.submit([250])
            with pytest.raises(RequestShed):
                miss.result(0)
            counters = registry.snapshot()["counters"]
            assert sum(counters[
                "repro_server_brownout_hits_total"].values()) == 2

    def test_commit_clears_the_brownout_cache(self):
        clock = FakeClock()
        fib = small_fib()
        server = LookupServer(HiBst(fib), workers=1, clock=clock)
        with server:
            server.lookup_batch([9], timeout=30)
            server.refresh()  # epoch bump clears the answer cache
            for _ in range(4):
                server.health.note_restart()
            stale = server.submit([9])
            with pytest.raises(RequestShed):
                stale.result(0)

    def test_degraded_falls_vector_back_to_plan(self):
        fib = small_fib()
        server = LookupServer(HiBst(fib), workers=1, backend="vector")
        with server:
            server.lookup_batch([1], timeout=30)
            assert server.active_backend == "vector"
            server.health.note_restart()
            server.health.note_restart()
            assert server.health_state is ServingState.DEGRADED
            server.lookup_batch([2], timeout=30)
            assert server.active_backend == "plan"

    def test_thread_worker_crash_restarts_and_serves_on(self):
        fib = small_fib()
        registry = MetricsRegistry()
        server = LookupServer(
            HiBst(fib), workers=1, registry=registry,
            restart_policy=RestartPolicy(base_backoff_s=0.005,
                                         max_backoff_s=0.01, budget=5,
                                         jitter=0.0))
        crashed = threading.Event()
        engine = server.engines()[0]
        real = engine.lookup_batch

        def sabotage(addresses):
            if not crashed.is_set():
                crashed.set()
                raise WorkerCrash("induced")
            return real(addresses)

        engine.lookup_batch = sabotage
        with server:
            hops = server.lookup_batch([1, 2, 3], timeout=30)
            assert hops == [fib.lookup(a) for a in (1, 2, 3)]
        assert server.supervisor.deaths == 1
        assert server.supervisor.restarts == 1
        assert server.supervisor.requeued_batches == 1
        counters = registry.snapshot()["counters"]
        assert sum(counters["repro_server_worker_deaths_total"].values()) == 1
        assert sum(counters["repro_server_restarts_total"].values()) == 1

    def test_retry_client_round_trip(self):
        fib = small_fib()
        server = LookupServer(HiBst(fib), workers=1, max_wait_s=0.001)
        with server:
            client = server.retry_client()
            # A healthy server answers without retrying (the 1 ms
            # coalescer deadline flushes the batch on the real clock).
            assert client.lookup([4], timeout=30) == [fib.lookup(4)]
            assert client.retries == 0

    def test_unsupervised_server_has_no_health(self):
        fib = small_fib()
        server = LookupServer(HiBst(fib), workers=1, supervise=False)
        with server:
            assert server.health is None
            assert server.supervisor is None
            assert server.health_state is ServingState.HEALTHY
            assert server.lookup(3, timeout=30) == fib.lookup(3)
