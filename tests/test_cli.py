"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def fib_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "fib.txt"
    assert main(["synthesize", "v4", "--scale", "0.002", "--out", str(path)]) == 0
    return str(path)


class TestSynthesize:
    def test_writes_fib(self, fib_file, capsys):
        from repro.datasets import load_fib

        fib = load_fib(fib_file)
        assert len(fib) > 1000

    def test_ipv6(self, tmp_path, capsys):
        path = tmp_path / "v6.txt"
        assert main(["synthesize", "v6", "--scale", "0.005",
                     "--out", str(path)]) == 0
        from repro.datasets import load_fib

        assert load_fib(path).width == 64


class TestLookup:
    def test_route_found(self, fib_file, capsys):
        from repro.datasets import load_fib

        fib = load_fib(fib_file)
        prefix = fib.prefixes()[0]
        from repro.prefix import format_address

        address = format_address(prefix.value, 32)
        assert main(["lookup", "--fib", fib_file, "--algorithm", "ltcam",
                     address]) == 0
        out = capsys.readouterr().out
        assert "port" in out

    def test_no_route_exit_code(self, fib_file, capsys):
        assert main(["lookup", "--fib", fib_file, "203.0.113.99"]) == 1
        assert "no route" in capsys.readouterr().out

    def test_unknown_algorithm(self, fib_file):
        with pytest.raises(SystemExit):
            main(["lookup", "--fib", fib_file, "--algorithm", "quantum",
                  "10.0.0.1"])

    def test_stats_reports_hot_tables(self, fib_file, capsys):
        from repro.datasets import load_fib
        from repro.prefix import format_address

        prefix = load_fib(fib_file).prefixes()[0]
        address = format_address(prefix.value, 32)
        assert main(["lookup", "--fib", fib_file, "--algorithm", "ltcam",
                     "--stats", address, address]) == 0
        out = capsys.readouterr().out
        assert "table accesses (hottest first):" in out
        assert "hit_rate=" in out

    def test_explain_prints_byte_stable_lowering_report(self, fib_file,
                                                        capsys):
        from repro.datasets import load_fib
        from repro.prefix import format_address

        prefix = load_fib(fib_file).prefixes()[0]
        address = format_address(prefix.value, 32)
        args = ["lookup", "--fib", fib_file, "--algorithm", "sail",
                "--backend", "vector", "--explain", address]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "algorithm: SAIL" in first
        assert "fully_lowered: true" in first
        assert "extract_mode: vector" in first
        assert "fuse: true" in first
        assert "lowered_steps" in first
        assert "bridged_steps (0): -" in first
        assert "kernel_sequence:" in first
        assert "[fused vector]" in first
        assert "port" in first  # the routes still print after the report
        # The report is deterministic: same invocation, same bytes.
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_explain_no_fuse_reports_unfused_schedule(self, fib_file,
                                                      capsys):
        from repro.datasets import load_fib
        from repro.prefix import format_address

        prefix = load_fib(fib_file).prefixes()[0]
        address = format_address(prefix.value, 32)
        assert main(["lookup", "--fib", fib_file, "--algorithm", "sail",
                     "--backend", "vector", "--explain", "--no-fuse",
                     address]) == 0
        out = capsys.readouterr().out
        assert "fuse: false" in out
        assert "fused_groups (0): -" in out
        assert "[fused vector]" not in out


class TestMetrics:
    def test_single_algorithm(self, fib_file, capsys):
        assert main(["metrics", "--fib", fib_file,
                     "--algorithm", "resail"]) == 0
        out = capsys.readouterr().out
        assert "CRAM metrics" in out
        assert "Ideal RMT" in out and "Tofino-2" in out

    def test_selection_and_drmt(self, fib_file, capsys):
        assert main(["metrics", "--fib", fib_file, "--drmt",
                     "--algorithm", "resail", "mashup"]) == 0
        out = capsys.readouterr().out
        assert "CRAM pick" in out
        assert "dRMT" in out

    def test_prometheus_format_is_byte_identical(self, fib_file, capsys):
        args = ["metrics", "--fib", fib_file, "--algorithm", "resail",
                "--format", "prometheus", "--exercise", "40", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert "# TYPE repro_cram_tcam_bits gauge" in first
        assert "repro_lookups_total" in first
        assert "repro_table_reads_total" in first
        # Wall clock never leaks into the deterministic rendering.
        assert "seconds" not in first

    def test_prometheus_with_serve_exercise_is_byte_identical(
            self, fib_file, capsys):
        # --exercise-serve routes requests through a FakeClock-driven
        # LookupServer so the repro_server_* family (spans, SLO, phase
        # counters) lands in the byte-stable rendering too.
        args = ["metrics", "--fib", fib_file, "--algorithm", "resail",
                "--format", "prometheus", "--exercise", "40",
                "--exercise-serve", "40", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        # 40 addresses in size-8 requests -> 5 coalesced submissions.
        assert 'repro_server_requests_total{server="exercise"} 5' in first
        assert ('repro_server_spans_total{phase="request",server="exercise"}'
                ' 5') in first
        assert "repro_server_spans_total" in first
        assert "repro_server_span_requests_sampled_total" in first
        assert "repro_server_slo_target_seconds" in first

    def test_json_format_carries_timings(self, fib_file, capsys):
        import json

        assert main(["metrics", "--fib", fib_file, "--algorithm", "resail",
                     "--format", "json", "--exercise", "10"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "repro_lookups_total" in doc["metrics"]["counters"]
        assert any(k.startswith("repro_exercise") for k in doc["timings"])


class TestCodegen:
    def test_stdout(self, fib_file, capsys):
        assert main(["codegen", "--fib", fib_file,
                     "--algorithm", "ltcam"]) == 0
        out = capsys.readouterr().out
        assert "#include <core.p4>" in out

    def test_file_output(self, fib_file, tmp_path, capsys):
        out_path = tmp_path / "sketch.p4"
        assert main(["codegen", "--fib", fib_file, "--algorithm", "ltcam",
                     "--out", str(out_path)]) == 0
        assert "table fib" in out_path.read_text()
        assert "TODO" in capsys.readouterr().out


class TestGrowth:
    def test_projection(self, capsys):
        assert main(["growth", "--year", "2033"]) == 0
        out = capsys.readouterr().out
        assert "1,860,000" in out


class TestChurn:
    def test_smoke_run_deterministic(self, capsys):
        assert main(["churn", "--algo", "resail", "--ops", "150",
                     "--batch", "25", "--faults", "all", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert "=== managed FIB event log ===" in first
        assert "final: health=" in first
        assert main(["churn", "--algo", "resail", "--ops", "150",
                     "--batch", "25", "--faults", "all", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit, match="unknown faults"):
            main(["churn", "--faults", "nonsense", "--ops", "10"])

    def test_tightened_guard_rolls_back(self, capsys):
        assert main(["churn", "--algo", "resail", "--ops", "50",
                     "--batch", "25", "--sram-budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "rolled back 2" in out
        assert "health=degraded" in out

    def test_fib_file_input(self, fib_file, capsys):
        assert main(["churn", "--fib", fib_file, "--ops", "40",
                     "--algo", "ltcam", "--seed", "3"]) == 0
        assert "violations: 0" in capsys.readouterr().out

    def test_metrics_and_events_archives(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.json"
        events_path = tmp_path / "events.jsonl"
        assert main(["churn", "--algo", "resail", "--ops", "100",
                     "--batch", "25", "--faults", "all", "--seed", "7",
                     "--metrics-out", str(metrics_path),
                     "--events-out", str(events_path)]) == 0
        capsys.readouterr()
        doc = json.loads(metrics_path.read_text())
        assert "repro_events_total" in doc["metrics"]["counters"]
        assert "repro_batch_size" in doc["metrics"]["histograms"]
        assert any(k.startswith("repro_batch_apply") for k in doc["timings"])
        lines = [json.loads(line)
                 for line in events_path.read_text().splitlines()]
        assert lines and all("kind" in line for line in lines)
        applied = doc["metrics"]["counters"]["repro_events_total"].get(
            '{kind="batch_applied"}', 0)
        assert applied == sum(
            1 for line in lines if line["kind"] == "batch_applied")


class TestTrace:
    def test_trace_writes_valid_chrome_trace(self, fib_file, tmp_path,
                                             capsys):
        import json

        from repro.obs import validate_chrome_trace

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        assert main(["trace", "--fib", fib_file, "--algorithm", "resail",
                     "--count", "3", "--out", str(out),
                     "--jsonl", str(jsonl)]) == 0
        assert "all next hops verified" in capsys.readouterr().out
        events = json.loads(out.read_text())
        validate_chrome_trace(events)
        assert any(e["ph"] == "X" for e in events)
        assert all(json.loads(line)
                   for line in jsonl.read_text().splitlines())

    def test_smoke_mode(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "traced" in out and "Perfetto" in out
        assert (tmp_path / "benchmarks/results/trace_smoke.json").exists()
        assert (tmp_path / "benchmarks/results/trace_smoke.jsonl").exists()

    def test_requires_fib_or_smoke(self):
        with pytest.raises(SystemExit, match="--fib is required"):
            main(["trace"])

    def test_explicit_addresses(self, fib_file, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["trace", "--fib", fib_file, "--algorithm", "ltcam",
                     "--out", str(out), "10.0.0.1", "192.0.2.7"]) == 0
        assert "traced 2 lookups" in capsys.readouterr().out


class TestAggregate:
    def test_roundtrip(self, fib_file, tmp_path, capsys):
        out_path = tmp_path / "agg.txt"
        assert main(["aggregate", "--fib", fib_file, "--out", str(out_path)]) == 0
        assert "aggregated" in capsys.readouterr().out
        from repro.datasets import load_fib

        before = load_fib(fib_file)
        after = load_fib(out_path)
        assert len(after) <= len(before)


class TestResults:
    def test_prints_results(self, tmp_path, capsys):
        (tmp_path / "tab04_demo.txt").write_text("Table 4 demo\nrow\n")
        assert main(["results", "--dir", str(tmp_path)]) == 0
        assert "Table 4 demo" in capsys.readouterr().out

    def test_filter_and_missing(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text("AAA\n")
        (tmp_path / "b.txt").write_text("BBB\n")
        assert main(["results", "--dir", str(tmp_path), "--only", "a"]) == 0
        out = capsys.readouterr().out
        assert "AAA" in out and "BBB" not in out
        assert main(["results", "--dir", str(tmp_path), "--only", "zzz"]) == 1

    def test_empty_dir(self, tmp_path, capsys):
        assert main(["results", "--dir", str(tmp_path)]) == 1
