"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def fib_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "fib.txt"
    assert main(["synthesize", "v4", "--scale", "0.002", "--out", str(path)]) == 0
    return str(path)


class TestSynthesize:
    def test_writes_fib(self, fib_file, capsys):
        from repro.datasets import load_fib

        fib = load_fib(fib_file)
        assert len(fib) > 1000

    def test_ipv6(self, tmp_path, capsys):
        path = tmp_path / "v6.txt"
        assert main(["synthesize", "v6", "--scale", "0.005",
                     "--out", str(path)]) == 0
        from repro.datasets import load_fib

        assert load_fib(path).width == 64


class TestLookup:
    def test_route_found(self, fib_file, capsys):
        from repro.datasets import load_fib

        fib = load_fib(fib_file)
        prefix = fib.prefixes()[0]
        from repro.prefix import format_address

        address = format_address(prefix.value, 32)
        assert main(["lookup", "--fib", fib_file, "--algorithm", "ltcam",
                     address]) == 0
        out = capsys.readouterr().out
        assert "port" in out

    def test_no_route_exit_code(self, fib_file, capsys):
        assert main(["lookup", "--fib", fib_file, "203.0.113.99"]) == 1
        assert "no route" in capsys.readouterr().out

    def test_unknown_algorithm(self, fib_file):
        with pytest.raises(SystemExit):
            main(["lookup", "--fib", fib_file, "--algorithm", "quantum",
                  "10.0.0.1"])


class TestMetrics:
    def test_single_algorithm(self, fib_file, capsys):
        assert main(["metrics", "--fib", fib_file,
                     "--algorithm", "resail"]) == 0
        out = capsys.readouterr().out
        assert "CRAM metrics" in out
        assert "Ideal RMT" in out and "Tofino-2" in out

    def test_selection_and_drmt(self, fib_file, capsys):
        assert main(["metrics", "--fib", fib_file, "--drmt",
                     "--algorithm", "resail", "mashup"]) == 0
        out = capsys.readouterr().out
        assert "CRAM pick" in out
        assert "dRMT" in out


class TestCodegen:
    def test_stdout(self, fib_file, capsys):
        assert main(["codegen", "--fib", fib_file,
                     "--algorithm", "ltcam"]) == 0
        out = capsys.readouterr().out
        assert "#include <core.p4>" in out

    def test_file_output(self, fib_file, tmp_path, capsys):
        out_path = tmp_path / "sketch.p4"
        assert main(["codegen", "--fib", fib_file, "--algorithm", "ltcam",
                     "--out", str(out_path)]) == 0
        assert "table fib" in out_path.read_text()
        assert "TODO" in capsys.readouterr().out


class TestGrowth:
    def test_projection(self, capsys):
        assert main(["growth", "--year", "2033"]) == 0
        out = capsys.readouterr().out
        assert "1,860,000" in out


class TestChurn:
    def test_smoke_run_deterministic(self, capsys):
        assert main(["churn", "--algo", "resail", "--ops", "150",
                     "--batch", "25", "--faults", "all", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert "=== managed FIB event log ===" in first
        assert "final: health=" in first
        assert main(["churn", "--algo", "resail", "--ops", "150",
                     "--batch", "25", "--faults", "all", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit, match="unknown faults"):
            main(["churn", "--faults", "nonsense", "--ops", "10"])

    def test_tightened_guard_rolls_back(self, capsys):
        assert main(["churn", "--algo", "resail", "--ops", "50",
                     "--batch", "25", "--sram-budget", "1"]) == 0
        out = capsys.readouterr().out
        assert "rolled back 2" in out
        assert "health=degraded" in out

    def test_fib_file_input(self, fib_file, capsys):
        assert main(["churn", "--fib", fib_file, "--ops", "40",
                     "--algo", "ltcam", "--seed", "3"]) == 0
        assert "violations: 0" in capsys.readouterr().out


class TestAggregate:
    def test_roundtrip(self, fib_file, tmp_path, capsys):
        out_path = tmp_path / "agg.txt"
        assert main(["aggregate", "--fib", fib_file, "--out", str(out_path)]) == 0
        assert "aggregated" in capsys.readouterr().out
        from repro.datasets import load_fib

        before = load_fib(fib_file)
        after = load_fib(out_path)
        assert len(after) <= len(before)


class TestResults:
    def test_prints_results(self, tmp_path, capsys):
        (tmp_path / "tab04_demo.txt").write_text("Table 4 demo\nrow\n")
        assert main(["results", "--dir", str(tmp_path)]) == 0
        assert "Table 4 demo" in capsys.readouterr().out

    def test_filter_and_missing(self, tmp_path, capsys):
        (tmp_path / "a.txt").write_text("AAA\n")
        (tmp_path / "b.txt").write_text("BBB\n")
        assert main(["results", "--dir", str(tmp_path), "--only", "a"]) == 0
        out = capsys.readouterr().out
        assert "AAA" in out and "BBB" not in out
        assert main(["results", "--dir", str(tmp_path), "--only", "zzz"]) == 1

    def test_empty_dir(self, tmp_path, capsys):
        assert main(["results", "--dir", str(tmp_path)]) == 1
