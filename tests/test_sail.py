"""Unit tests for the SAIL baseline."""

import pytest

from repro.algorithms import Sail
from repro.algorithms.sail import PIVOT_LEVEL, sail_layout_from_distribution
from repro.chip import map_to_ideal_rmt
from repro.datasets import ipv4_length_distribution
from repro.prefix import Fib, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


@pytest.fixture()
def small_sail():
    fib = Fib(32)
    fib.insert(P("10.0.0.0/8"), 1)
    fib.insert(P("10.1.0.0/16"), 2)
    fib.insert(P("10.1.2.0/24"), 3)
    fib.insert(P("10.1.2.128/25"), 4)  # pivot-pushed
    fib.insert(P("10.1.2.192/27"), 5)  # pivot-pushed, nested
    return fib, Sail(fib)


class TestLookup:
    def test_length_hierarchy(self, small_sail):
        fib, sail = small_sail
        assert sail.lookup(A("10.9.9.9")) == 1
        assert sail.lookup(A("10.1.9.9")) == 2
        assert sail.lookup(A("10.1.2.5")) == 3
        assert sail.lookup(A("11.0.0.1")) is None

    def test_pivot_pushing_long_prefixes(self, small_sail):
        fib, sail = small_sail
        assert sail.lookup(A("10.1.2.130")) == 4
        assert sail.lookup(A("10.1.2.200")) == 5
        assert sail.lookup(A("10.1.2.130")) == fib.lookup(A("10.1.2.130"))

    def test_chunk_without_covering_24(self):
        # A long prefix with no /24 above it: misses inside the chunk
        # must fall through to shorter lengths.
        fib = Fib(32)
        fib.insert(P("10.0.0.0/8"), 1)
        fib.insert(P("10.1.2.128/25"), 4)
        sail = Sail(fib)
        assert sail.lookup(A("10.1.2.130")) == 4
        assert sail.lookup(A("10.1.2.5")) == 1  # chunk slot empty -> /8

    def test_default_route(self):
        fib = Fib(32)
        fib.insert(P("0.0.0.0/0"), 9)
        sail = Sail(fib)
        assert sail.lookup(A("200.1.1.1")) == 9

    def test_matches_oracle(self, ipv4_fib, ipv4_addresses):
        sail = Sail(ipv4_fib)
        for addr in ipv4_addresses:
            assert sail.lookup(addr) == ipv4_fib.lookup(addr)


class TestUpdates:
    def test_insert_then_delete_roundtrip(self, small_sail):
        fib, sail = small_sail
        sail.insert(P("10.2.0.0/16"), 7)
        assert sail.lookup(A("10.2.1.1")) == 7
        sail.delete(P("10.2.0.0/16"))
        assert sail.lookup(A("10.2.1.1")) == 1

    def test_delete_long_prefix_rebuilds_chunk(self, small_sail):
        fib, sail = small_sail
        sail.delete(P("10.1.2.192/27"))
        assert sail.lookup(A("10.1.2.200")) == 4
        sail.delete(P("10.1.2.128/25"))
        assert sail.lookup(A("10.1.2.200")) == 3

    def test_delete_24_under_chunk(self, small_sail):
        fib, sail = small_sail
        sail.delete(P("10.1.2.0/24"))
        assert sail.lookup(A("10.1.2.5")) == 2  # falls back to /16
        assert sail.lookup(A("10.1.2.130")) == 4  # chunk intact

    def test_delete_missing_raises(self, small_sail):
        _fib, sail = small_sail
        with pytest.raises(KeyError):
            sail.delete(P("99.0.0.0/8"))


class TestModel:
    def test_cram_program_equivalence(self, small_sail):
        fib, sail = small_sail
        for addr in [A("10.9.9.9"), A("10.1.2.130"), A("10.1.2.200"),
                     A("11.0.0.1"), A("10.1.2.5")]:
            assert sail.cram_lookup(addr) == sail.lookup(addr)

    def test_cram_metrics_dominated_by_arrays(self, small_sail):
        _fib, sail = small_sail
        metrics = sail.cram_metrics()
        assert metrics.tcam_bits == 0  # SRAM-only scheme
        # Bitmaps (2^25 - 2) + arrays (8 * (2^25 - 2)) dominate: ~36 MB.
        assert metrics.sram_bits > 36 * 8 * 2**20 * 0.95

    def test_layout_exceeds_tofino2(self):
        # The §6.5.2 claim: SAIL cannot fit an RMT chip.
        layout = sail_layout_from_distribution(ipv4_length_distribution())
        mapping = map_to_ideal_rmt(layout)
        assert not mapping.feasible
        assert mapping.sram_pages > 2000  # paper: 2313
        assert mapping.stages > 20  # paper: 33

    def test_layout_chunks_scale_with_long_prefixes(self):
        dist = ipv4_length_distribution()
        layout = sail_layout_from_distribution(dist)
        chunk_phase = layout.phases[-1]
        assert chunk_phase.name == "pivot-pushed chunks"
        assert chunk_phase.tables[0].entries == 800 * 256
