"""Unit + property tests for the measurement extension (§2.5/§2.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run
from repro.measure import CountMinSketch, HeavyHitters


class TestCountMin:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=3)
        truth = {}
        for i in range(500):
            key = (i * 7) % 40
            sketch.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.query(key) >= count

    def test_exact_when_roomy(self):
        # Far more counters than keys: collisions are negligible.
        sketch = CountMinSketch(width=4096, depth=4)
        for key, count in [(1, 10), (2, 20), (3, 5)]:
            sketch.update(key, count)
        assert sketch.query(1) == 10
        assert sketch.query(2) == 20
        assert sketch.query(99) == 0

    def test_for_error_sizing(self):
        sketch = CountMinSketch.for_error(epsilon=0.01, delta=0.01)
        assert sketch.width >= 272  # e / 0.01
        assert sketch.depth >= 5  # ln(100)

    def test_epsilon_guarantee_statistically(self):
        import random

        rng = random.Random(3)
        sketch = CountMinSketch.for_error(epsilon=0.05, delta=0.05)
        truth = {}
        for _ in range(5000):
            key = rng.randrange(2000)
            sketch.update(key)
            truth[key] = truth.get(key, 0) + 1
        bound = 0.05 * sketch.total
        violations = sum(
            1 for key, count in truth.items()
            if sketch.query(key) - count > bound
        )
        assert violations / len(truth) <= 0.05

    def test_counter_saturation(self):
        sketch = CountMinSketch(width=8, depth=1, counter_bits=4)
        sketch.update(1, 100)
        assert sketch.query(1) == 15  # clamped, never wrapped

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(width=8, depth=99)
        with pytest.raises(ValueError):
            CountMinSketch.for_error(epsilon=2, delta=0.1)
        sketch = CountMinSketch(width=8)
        with pytest.raises(ValueError):
            sketch.update(1, -1)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(1, 10)),
                    max_size=60))
    def test_property_lower_bound(self, updates):
        sketch = CountMinSketch(width=32, depth=3)
        truth = {}
        for key, count in updates:
            sketch.update(key, count)
            truth[key] = truth.get(key, 0) + count
        for key, count in truth.items():
            assert sketch.query(key) >= count


class TestCramIntegration:
    def test_update_then_cram_query(self):
        sketch = CountMinSketch(width=256, depth=3)
        for _ in range(7):
            sketch.update(42)
        program = sketch.cram_program()
        state = run(program, {"key": 42})
        assert state["estimate"] == sketch.query(42) == 7

    def test_one_parallel_step_plus_combine(self):
        """I7: the d row reads share a step; combine follows."""
        sketch = CountMinSketch(width=64, depth=4)
        program = sketch.cram_program()
        waves = program.parallel_schedule()
        assert len(waves) == 2
        assert len(waves[0]) == 4

    def test_register_accounting(self):
        sketch = CountMinSketch(width=1024, depth=4, counter_bits=32)
        metrics = sketch.cram_metrics()
        assert metrics.register_bits == 4 * 1024 * 32
        assert metrics.tcam_bits == 0
        assert metrics.sram_bits == 0
        assert metrics.steps == 2


class TestHeavyHitters:
    def test_detects_heavy_flow(self):
        hh = HeavyHitters(threshold=50, sketch=CountMinSketch(2048, 4))
        for _ in range(100):
            hh.update(7)
        for key in range(200):
            hh.update(1000 + key)
        assert hh.is_heavy(7)
        assert not hh.is_heavy(1003)
        top_key, top_count = hh.heavy_hitters()[0]
        assert top_key == 7
        assert top_count >= 100

    def test_exact_counting_after_promotion(self):
        hh = HeavyHitters(threshold=10, sketch=CountMinSketch(2048, 4))
        for _ in range(25):
            hh.update(5)
        assert dict(hh.heavy_hitters())[5] == 25

    def test_capacity_eviction(self):
        hh = HeavyHitters(threshold=2, table_capacity=2,
                          sketch=CountMinSketch(4096, 4))
        for key, reps in [(1, 5), (2, 6), (3, 50)]:
            for _ in range(reps):
                hh.update(key)
        assert hh.is_heavy(3)
        assert len(hh.flows) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyHitters(threshold=0)
        with pytest.raises(ValueError):
            HeavyHitters(threshold=1, table_capacity=0)
