"""Shared fixtures: small deterministic FIBs and address workloads.

Also registers ``--regen-golden``: rewrite the golden files under
``tests/golden/`` from the current implementation instead of comparing
against them (see ``test_golden_tables.py``).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json from the current implementation",
    )


@pytest.fixture
def regen_golden(request):
    return request.config.getoption("--regen-golden")

from repro.datasets import (
    matching_addresses,
    mixed_addresses,
    small_example_fib,
    synthesize_as65000,
    synthesize_as131072,
)


@pytest.fixture(scope="session")
def example_fib():
    """The paper's Table 1 routing table (8-bit toy addresses)."""
    return small_example_fib()


@pytest.fixture(scope="session")
def ipv4_fib():
    """A ~4.6k-prefix synthetic AS65000 sample (deterministic)."""
    return synthesize_as65000(scale=0.005)


@pytest.fixture(scope="session")
def ipv6_fib():
    """A ~9.7k-prefix synthetic AS131072 sample (deterministic)."""
    return synthesize_as131072(scale=0.05)


@pytest.fixture(scope="session")
def ipv4_addresses(ipv4_fib):
    """A hit/miss mix over the IPv4 sample."""
    return mixed_addresses(ipv4_fib, 2000, hit_fraction=0.8, seed=11)


@pytest.fixture(scope="session")
def ipv6_addresses(ipv6_fib):
    return mixed_addresses(ipv6_fib, 2000, hit_fraction=0.8, seed=12)
