"""Shared fixtures: small deterministic FIBs and address workloads.

Also registers ``--regen-golden``: rewrite the golden files under
``tests/golden/`` from the current implementation instead of comparing
against them (see ``test_golden_tables.py``).

And a flake guard: ``pyproject.toml`` sets ``timeout = 120`` so no
test — in particular the concurrent serving tests, which join worker
threads and forked processes — can hang the suite.  CI installs
pytest-timeout, which owns that ini value; this conftest ships a
SIGALRM fallback enforcing the same limit when the plugin is absent
(the offline sandbox), including the per-test
``@pytest.mark.timeout(N)`` override.
"""

import importlib.util
import signal

import pytest

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_HAVE_SIGALRM = hasattr(signal, "SIGALRM")


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json from the current implementation",
    )
    if not _HAVE_PYTEST_TIMEOUT:
        # pytest-timeout normally registers this ini key; mirror it so
        # the pyproject setting parses cleanly without the plugin.
        parser.addini("timeout", "per-test timeout in seconds "
                                 "(conftest SIGALRM fallback)", default="0")


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _HAVE_PYTEST_TIMEOUT or not _HAVE_SIGALRM:
        yield
        return
    seconds = _timeout_for(item)
    if seconds <= 0:
        yield
        return

    def _expired(signum, frame):
        pytest.fail(f"test exceeded the {seconds:.0f}s timeout "
                    "(conftest SIGALRM fallback)", pytrace=False)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def regen_golden(request):
    return request.config.getoption("--regen-golden")

from repro.datasets import (
    matching_addresses,
    mixed_addresses,
    small_example_fib,
    synthesize_as65000,
    synthesize_as131072,
)


@pytest.fixture(scope="session")
def example_fib():
    """The paper's Table 1 routing table (8-bit toy addresses)."""
    return small_example_fib()


@pytest.fixture(scope="session")
def ipv4_fib():
    """A ~4.6k-prefix synthetic AS65000 sample (deterministic)."""
    return synthesize_as65000(scale=0.005)


@pytest.fixture(scope="session")
def ipv6_fib():
    """A ~9.7k-prefix synthetic AS131072 sample (deterministic)."""
    return synthesize_as131072(scale=0.05)


@pytest.fixture(scope="session")
def ipv4_addresses(ipv4_fib):
    """A hit/miss mix over the IPv4 sample."""
    return mixed_addresses(ipv4_fib, 2000, hit_fraction=0.8, seed=11)


@pytest.fixture(scope="session")
def ipv6_addresses(ipv6_fib):
    return mixed_addresses(ipv6_fib, 2000, hit_fraction=0.8, seed=12)
