"""Unit tests for the Poptrie implementation."""

import pytest

from repro.algorithms import MultibitTrie, Poptrie
from repro.algorithms.poptrie import NODE_BITS, STRIDE
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.prefix import Fib, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


@pytest.fixture()
def small_poptrie():
    fib = Fib(32)
    fib.insert(P("10.0.0.0/8"), 1)
    fib.insert(P("10.1.0.0/16"), 2)
    fib.insert(P("10.1.2.0/24"), 3)
    fib.insert(P("10.1.2.128/25"), 4)
    fib.insert(P("10.1.2.129/32"), 5)
    return fib, Poptrie(fib, dp_bits=16)


class TestLookup:
    def test_hierarchy(self, small_poptrie):
        fib, pt = small_poptrie
        for text in ["10.9.9.9", "10.1.9.9", "10.1.2.5", "10.1.2.130",
                     "10.1.2.129", "11.0.0.1"]:
            assert pt.lookup(A(text)) == fib.lookup(A(text)), text

    def test_matches_oracle(self, ipv4_fib, ipv4_addresses):
        pt = Poptrie(ipv4_fib, dp_bits=16)
        for addr in ipv4_addresses:
            assert pt.lookup(addr) == ipv4_fib.lookup(addr)

    def test_matches_oracle_ipv6(self, ipv6_fib, ipv6_addresses):
        pt = Poptrie(ipv6_fib, dp_bits=16)
        for addr in ipv6_addresses[:500]:
            assert pt.lookup(addr) == ipv6_fib.lookup(addr)

    def test_invalid_dp_bits(self, ipv4_fib):
        with pytest.raises(ValueError):
            Poptrie(ipv4_fib, dp_bits=0)
        with pytest.raises(ValueError):
            Poptrie(ipv4_fib, dp_bits=32)


class TestStructure:
    def test_leaf_runs_are_compressed(self, small_poptrie):
        """leafvec marks only run starts, so leaves < slots."""
        _fib, pt = small_poptrie
        for level, nodes in enumerate(pt.levels):
            total_leaf_slots = sum(
                (1 << STRIDE) - bin(n.vector).count("1") for n in nodes
            )
            assert len(pt.leaf_arrays[level]) <= total_leaf_slots

    def test_children_packed_contiguously(self, small_poptrie):
        _fib, pt = small_poptrie
        for level, nodes in enumerate(pt.levels[:-1]):
            for node in nodes:
                fanout = bin(node.vector).count("1")
                if fanout:
                    assert node.child_base + fanout <= len(pt.levels[level + 1])

    def test_footprint_below_multibit(self, ipv4_fib):
        """The compressed-trie selling point: smaller SRAM.

        At this small test scale the fixed 2^16 direct-pointing table
        dominates both schemes; the full-scale factor (>2x) is asserted
        in benchmarks/bench_poptrie.py.
        """
        pt = Poptrie(ipv4_fib, dp_bits=16)
        mb = MultibitTrie(ipv4_fib, [16, 4, 4, 8])
        assert pt.sram_bits() < mb.cram_metrics().sram_bits


class TestModel:
    def test_cram_program_equivalence(self, small_poptrie):
        fib, pt = small_poptrie
        for text in ["10.9.9.9", "10.1.2.130", "10.1.2.129", "11.0.0.1",
                     "10.1.2.5"]:
            assert pt.cram_lookup(A(text)) == pt.lookup(A(text)), text

    def test_node_bits_constant(self):
        assert NODE_BITS == 192  # two 64b vectors + two 32b bases

    def test_stage_tax_on_tofino(self, ipv4_fib):
        """§2.3's judgement: bitmap compression costs pipeline stages.

        Poptrie's per-level popcount chain roughly triples each level's
        Tofino-2 stage cost relative to its memory needs.
        """
        pt = Poptrie(ipv4_fib, dp_bits=16)
        ideal = map_to_ideal_rmt(pt.layout())
        tofino = map_to_tofino2(pt.layout())
        levels = len(pt.levels)
        assert tofino.stages >= 2 + 3 * levels  # dp + 3/level + leaves
        assert tofino.stages > ideal.stages
