"""Property-based tests (hypothesis) on the request coalescer.

Invariants exercised, over arbitrary interleavings of submit / flush /
deadline-advance / commit (epoch bump) / batch completion / shutdown:

  * a cut batch never exceeds ``max_batch`` addresses;
  * dispatch preserves global FIFO order — the concatenation of the
    dispatched batches is exactly the concatenation of the accepted
    requests, in submission order;
  * every accepted request is satisfied exactly once: its results come
    back in its own submission order (even when split across batches),
    or it fails exactly once with ``RequestShed``/``ServerClosed``;
  * the epoch recorded on a handle stays within the window of epochs
    its batches executed under;
  * the deadline trigger (driven through ``FakeClock.advance``, never
    the wall clock) flushes a non-empty open batch after ``max_wait``.

The driver is single-threaded on purpose: hypothesis explores the
*interleaving space* deterministically and shrinks failures; the
threaded soak lives in ``test_server_stress.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.obs import FakeClock
from repro.server import RequestCoalescer, RequestShed, ServerClosed

MAX_WAIT_S = 1.0


@st.composite
def scripts(draw):
    """An interleaving of coalescer operations."""
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("submit"), st.integers(0, 9)),
            st.tuples(st.just("flush"), st.just(0)),
            st.tuples(st.just("advance"), st.integers(1, 4)),
            st.tuples(st.just("commit"), st.just(0)),
            st.tuples(st.just("complete"), st.just(0)),
        ),
        min_size=1, max_size=30,
    ))
    return ops


class Driver:
    """Runs a script against a coalescer with a recording sink."""

    def __init__(self, max_batch, accept=None):
        self.clock = FakeClock()
        self.accept = accept  # None: accept all; else per-batch pattern
        self.dispatched = []
        self.refused = []
        self.completed = 0
        self.epoch = 0
        #: epoch window each dispatched batch was completed under
        self.batch_epochs = []
        self.box = RequestCoalescer(self._sink, max_batch=max_batch,
                                    max_wait_s=MAX_WAIT_S, clock=self.clock)
        self.handles = []
        self.submitted = []  # addresses in accepted submission order
        self._next_address = 0

    def _sink(self, batch):
        index = len(self.dispatched) + len(self.refused)
        ok = True if self.accept is None else self.accept(index)
        if ok:
            self.dispatched.append(batch)
        else:
            self.refused.append(batch)
        return ok

    def run(self, ops):
        for op, arg in ops:
            if op == "submit" and not self.box.closed:
                addresses = [self._next_address + i for i in range(arg)]
                self._next_address += arg
                handle = self.box.submit(addresses)
                self.handles.append(handle)
                self.submitted.extend(addresses)
            elif op == "flush":
                self.box.flush()
            elif op == "advance":
                self.clock.advance(arg * MAX_WAIT_S / 2)
            elif op == "commit":
                self.epoch += 1
            elif op == "complete":
                self.complete_next()

    def complete_next(self):
        if self.completed < len(self.dispatched):
            batch = self.dispatched[self.completed]
            batch.complete(list(batch.addresses), epoch=self.epoch)
            self.batch_epochs.append(self.epoch)
            self.completed += 1

    def finish(self):
        """Drain: close, then complete everything still in flight."""
        self.box.close(drain=True)
        while self.completed < len(self.dispatched):
            self.complete_next()


class TestCoalescerProperties:
    @given(scripts(), st.integers(1, 8))
    @settings(max_examples=120, deadline=None)
    def test_batches_bounded_fifo_and_exactly_once(self, ops, max_batch):
        driver = Driver(max_batch)
        driver.run(ops)
        driver.finish()

        # Bounded batches with sensible flush reasons.
        for batch in driver.dispatched:
            assert 0 < len(batch.addresses) <= max_batch
            assert batch.reason in ("size", "deadline", "manual", "drain")

        # Global FIFO: dispatched order == accepted submission order.
        flat = [a for b in driver.dispatched for a in b.addresses]
        assert flat == driver.submitted

        # Exactly once, in the request's own order (identity sink).
        for handle in driver.handles:
            assert handle.done()
            assert handle.result(0) == handle.addresses

    @given(scripts(), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_epoch_window_covers_every_handle(self, ops, max_batch):
        driver = Driver(max_batch)
        driver.run(ops)
        driver.finish()
        for handle in driver.handles:
            if not handle.addresses:
                continue
            lo, hi = handle.epoch_span
            assert lo is not None and hi is not None
            assert 0 <= lo <= hi <= driver.epoch

    @given(st.integers(1, 9), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_deadline_flushes_after_max_wait(self, size, max_batch):
        driver = Driver(max_batch)
        handle = driver.box.submit(list(range(size)))
        driver.clock.advance(MAX_WAIT_S * 0.99)
        open_before = driver.box.pending_addresses
        driver.clock.advance(MAX_WAIT_S)
        assert driver.box.pending_addresses == 0
        if open_before:
            assert driver.dispatched[-1].reason == "deadline"
        driver.finish()
        assert handle.result(0) == handle.addresses

    @given(scripts(), st.integers(1, 8), st.sets(st.integers(0, 40)))
    @settings(max_examples=80, deadline=None)
    def test_shed_interleavings_resolve_every_request(self, ops, max_batch,
                                                      refuse):
        driver = Driver(max_batch, accept=lambda i: i not in refuse)
        driver.run(ops)
        driver.finish()
        for handle in driver.handles:
            assert handle.done()
            try:
                result = handle.result(0)
            except (RequestShed, ServerClosed):
                continue  # failed exactly once, caller saw the error
            # A handle with no refused part must carry its own answers.
            assert result == handle.addresses

    @given(scripts())
    @settings(max_examples=40, deadline=None)
    def test_submit_after_close_raises_and_leaves_state_clean(self, ops):
        driver = Driver(4)
        driver.run(ops)
        driver.box.close(drain=False)
        with pytest.raises(ServerClosed):
            driver.box.submit([1])
        while driver.completed < len(driver.dispatched):
            driver.complete_next()
        # Non-draining close: every handle resolved — served or failed.
        for handle in driver.handles:
            assert handle.done()
