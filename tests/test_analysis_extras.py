"""Tests for the capacity headroom analysis, ASCII figures, DAG export,
the stride advisor, and the multiverse-prediction validation."""

import pytest

from repro.analysis import (
    HeadroomReport,
    decade_claim_holds,
    ipv4_headroom,
    ipv6_headroom,
    ipv4_scaling_series,
    render_chart,
    render_scaling_figure,
)
from repro.datasets import ipv4_length_distribution, ipv6_length_distribution


class TestHeadroom:
    def test_paper_abstract_claim(self):
        """RESAIL 2.25M IPv4 + BSIC 390k IPv6 last the decade (IPv6
        under O2's conservative linear slowdown, as the paper argues)."""
        assert ipv4_headroom("RESAIL", 2_250_000).years_of_headroom >= 10
        assert ipv6_headroom("BSIC", 390_000, model="linear").years_of_headroom >= 6
        assert decade_claim_holds(2_250_000, 500_000)

    def test_exponential_ipv6_breaks_sooner(self):
        doubling = ipv6_headroom("BSIC", 390_000, model="doubling")
        linear = ipv6_headroom("BSIC", 390_000, model="linear")
        assert doubling.years_of_headroom < linear.years_of_headroom
        assert 2.5 < doubling.years_of_headroom < 4

    def test_undersized_capacity(self):
        report = ipv4_headroom("Logical TCAM", 245_760)
        assert report.exhaustion_year is None
        assert not report.lasts_a_decade
        assert "already below" in report.describe()

    def test_describe_mentions_year(self):
        report = ipv4_headroom("RESAIL", 2_250_000)
        assert "203" in report.describe()  # ~2035

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            ipv6_headroom("x", 1_000_000, model="cubic")


class TestAsciiFigures:
    def test_render_chart_basics(self):
        text = render_chart(
            "demo",
            {"up": [(0, 0), (10, 10)], "down": [(0, 10), (10, 0)]},
            width=20, height=8, x_label="size", y_label="pages",
        )
        assert "demo" in text
        assert "o = up" in text and "x = down" in text
        assert text.count("\n") >= 10

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_chart("demo", {"empty": []})

    def test_render_scaling_figure(self):
        series = ipv4_scaling_series([0.5, 1.0, 1.5])
        text = render_scaling_figure("Figure 9", series)
        assert "RESAIL / Ideal RMT" in text
        assert "database size" in text

    def test_constant_series_does_not_crash(self):
        text = render_chart("flat", {"c": [(0, 5), (10, 5)]})
        assert "c" in text


class TestRenderDot:
    def test_dag_structure_exported(self, ipv4_fib):
        from repro.algorithms import Resail

        dot = Resail(ipv4_fib).cram_program().render_dot()
        assert dot.startswith('digraph "RESAIL"')
        assert '"bitmap_24" -> "hash"' in dot
        assert "shape=box" in dot  # table steps
        # Parallel bitmap steps have no edges among themselves.
        assert '"bitmap_24" -> "bitmap_23"' not in dot


class TestStrideAdvisor:
    def test_ipv4_strides_mirror_spikes(self):
        dist = ipv4_length_distribution()
        strides = dist.suggest_strides(levels=4)
        assert sum(strides) == 32
        assert strides[0] == 16  # first cut at the /16 spike
        boundaries = {sum(strides[: i + 1]) for i in range(len(strides))}
        assert 24 in boundaries  # the major spike is a boundary

    def test_ipv6_first_stride_capped(self):
        dist = ipv6_length_distribution()
        strides = dist.suggest_strides(levels=4, max_first=20)
        assert sum(strides) == 64
        assert strides[0] <= 20  # the paper's "32 is too wide" rule

    def test_level_budget_respected(self):
        dist = ipv4_length_distribution()
        assert len(dist.suggest_strides(levels=3)) <= 3


class TestMultiversePredictionValidation:
    def test_scaled_layout_matches_actually_scaled_build(self, ipv6_fib):
        """§7.2's premise, verified: multiverse-scaling the database and
        analytically scaling the base layout agree table-for-table."""
        from repro.algorithms import Bsic
        from repro.datasets import multiverse_scale

        base = Bsic(ipv6_fib, k=24)
        predicted = base.layout().scaled(2.0)
        actual = Bsic(multiverse_scale(ipv6_fib, 2), k=24).layout()

        predicted_tables = {t.name: t.entries for p in predicted.phases
                            for t in p.tables}
        actual_tables = {t.name: t.entries for p in actual.phases
                         for t in p.tables}
        assert set(actual_tables) == set(predicted_tables)
        for name, entries in actual_tables.items():
            assert entries == predicted_tables[name], name
