"""Unit tests for range expansion and BSTs (DXR / BSIC substrate)."""

import pytest

from repro.prefix import (
    BinaryTrie,
    RangeEntry,
    expand_to_ranges,
    from_bitstring,
    lookup_ranges,
    ranges_to_bst,
)


def P(s, width=4):
    return from_bitstring(s, width)


class TestExpandToRanges:
    def test_empty_entries_covers_space_with_default(self):
        out = expand_to_ranges([], 4, default_hop=7)
        assert out == [RangeEntry(0, 7)]

    def test_empty_entries_no_default(self):
        assert expand_to_ranges([], 4) == [RangeEntry(0, None)]

    def test_single_full_space_prefix(self):
        out = expand_to_ranges([(P(""), 3)], 4)
        assert out == [RangeEntry(0, 3)]

    def test_completion_intervals_inherit_default(self):
        out = expand_to_ranges([(P("01"), 1)], 4, default_hop=9)
        assert out == [RangeEntry(0, 9), RangeEntry(4, 1), RangeEntry(8, 9)]

    def test_nested_prefixes_split_ranges(self):
        out = expand_to_ranges([(P("0"), 1), (P("01"), 2)], 4)
        assert out == [
            RangeEntry(0, 1),
            RangeEntry(4, 2),
            RangeEntry(8, None),
        ]

    def test_merge_equal_neighbours(self):
        # Two adjacent prefixes with the same hop collapse to one range.
        out = expand_to_ranges([(P("00"), 5), (P("01"), 5)], 4)
        assert out == [RangeEntry(0, 5), RangeEntry(8, None)]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expand_to_ranges([(from_bitstring("01", 8), 1)], 4)

    def test_range_lookup_equals_trie_lpm(self):
        entries = [(P("00"), 2), (P("01"), 3), (P("0100"), 0),
                   (P("1010"), 1), (P("1011"), 2)]
        trie = BinaryTrie(4)
        for p, h in entries:
            trie.insert(p, h)
        table = expand_to_ranges(entries, 4, default_hop=None)
        for key in range(16):
            assert lookup_ranges(table, key) == trie.lookup(key), key


class TestPaperTable13:
    """Appendix A.4's worked example: slice 1001 of Table 3."""

    HOPS = {"A": 0, "B": 1, "C": 2, "D": 3}

    def table(self):
        entries = [
            (P("00"), self.HOPS["C"]),
            (P("01"), self.HOPS["D"]),
            (P("0100"), self.HOPS["A"]),
            (P("1010"), self.HOPS["B"]),
            (P("1011"), self.HOPS["C"]),
        ]
        return expand_to_ranges(entries, 4, default_hop=None)

    def test_matches_paper_rows(self):
        got = [(r.left, r.next_hop) for r in self.table()]
        assert got == [
            (0b0000, self.HOPS["C"]),
            (0b0100, self.HOPS["A"]),
            (0b0101, self.HOPS["D"]),
            (0b1000, None),
            (0b1010, self.HOPS["B"]),
            (0b1011, self.HOPS["C"]),
            (0b1100, None),
        ]

    def test_figure_12_bst_shape(self):
        bst = ranges_to_bst(self.table())
        assert bst.size() == 7
        assert bst.depth() == 3  # balanced over 7 endpoints
        # Root is the median endpoint, 1000.
        assert bst.left_endpoint == 0b1000


class TestBst:
    def test_search_matches_linear(self):
        table = expand_to_ranges(
            [(P("00"), 2), (P("01"), 3), (P("1010"), 1)], 4, default_hop=8
        )
        bst = ranges_to_bst(table)
        for key in range(16):
            assert bst.search(key) == lookup_ranges(table, key), key

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            ranges_to_bst([])

    def test_level_sizes_sum_to_size(self):
        table = expand_to_ranges(
            [(P(format(i, "04b")), i % 3) for i in range(0, 16, 2)], 4
        )
        bst = ranges_to_bst(table)
        assert sum(bst.level_sizes()) == bst.size()
        assert len(bst.level_sizes()) == bst.depth()

    def test_depth_is_logarithmic(self):
        table = [RangeEntry(i, i % 5) for i in range(0, 128, 2)]
        bst = ranges_to_bst(table)
        assert bst.depth() == 7  # ceil(log2(64 + 1))
