"""Unit tests for the packet-classification extension (§2.5)."""

import pytest

from repro.chip import map_to_ideal_rmt
from repro.classify import (
    ANY_PORTS,
    Classifier,
    PacketHeader,
    Rule,
    TcamClassifier,
    TreeClassifier,
    classifier_workload,
    range_to_prefixes,
    synthesize_classifier,
)
from repro.prefix import Prefix, parse_prefix

P = parse_prefix


class TestRangeToPrefixes:
    def test_full_range_is_one_prefix(self):
        out = range_to_prefixes(0, 65535)
        assert len(out) == 1 and out[0].length == 0

    def test_exact_port(self):
        out = range_to_prefixes(443, 443)
        assert len(out) == 1 and out[0].length == 16

    def test_cover_is_exact_and_disjoint(self):
        for lo, hi in [(1, 6), (0, 1023), (1024, 5000), (3, 3), (0, 65535)]:
            prefixes = range_to_prefixes(lo, hi)
            covered = []
            for p in prefixes:
                covered.extend(range(p.first_address, p.last_address + 1))
            assert sorted(covered) == list(range(lo, hi + 1)), (lo, hi)

    def test_worst_case_bound(self):
        # [1, 2^w - 2] is the classic worst case: 2w - 2 prefixes.
        out = range_to_prefixes(1, 65534)
        assert len(out) <= 2 * 16 - 2

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            range_to_prefixes(10, 5)


class TestRule:
    def make(self, **kw):
        defaults = dict(priority=1, src=Prefix.default(32),
                        dst=P("10.0.0.0/8"), protocol=6)
        defaults.update(kw)
        return Rule(**defaults)

    def test_match_semantics(self):
        rule = self.make(dst_ports=(80, 80))
        hit = PacketHeader(1, 0x0A000001, 6, 1234, 80)
        assert rule.matches(hit)
        assert not rule.matches(PacketHeader(1, 0x0B000001, 6, 1234, 80))
        assert not rule.matches(PacketHeader(1, 0x0A000001, 17, 1234, 80))
        assert not rule.matches(PacketHeader(1, 0x0A000001, 6, 1234, 81))

    def test_any_protocol(self):
        rule = self.make(protocol=None)
        assert rule.matches(PacketHeader(1, 0x0A000001, 200, 1, 1))

    def test_tcam_rows_is_range_product(self):
        rule = self.make(src_ports=(1, 6), dst_ports=(0, 1023))
        assert rule.tcam_rows() == len(range_to_prefixes(1, 6)) * 1

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(dst_ports=(5, 1))
        with pytest.raises(ValueError):
            self.make(protocol=300)

    def test_classifier_priority_order(self):
        low = self.make(priority=5, action=1)
        high = self.make(priority=1, action=2)
        clf = Classifier([low, high])
        assert clf.classify(PacketHeader(0, 0x0A000001, 6, 1, 1)) == 2

    def test_duplicate_priorities_rejected(self):
        with pytest.raises(ValueError):
            Classifier([self.make(priority=1), self.make(priority=1)])


class TestSynthesizedClassifiers:
    @pytest.fixture(scope="class")
    def setup(self):
        rules = synthesize_classifier(250, seed=11)
        return (Classifier(rules), TcamClassifier(rules),
                TreeClassifier(rules, stride=4, binth=8),
                classifier_workload(rules, 600, seed=12))

    def test_flat_tcam_matches_oracle(self, setup):
        oracle, flat, _tree, packets = setup
        for packet in packets:
            assert flat.classify(packet) == oracle.classify(packet)

    def test_tree_matches_oracle(self, setup):
        oracle, _flat, tree, packets = setup
        for packet in packets:
            assert tree.classify(packet) == oracle.classify(packet)

    def test_row_counts_match(self, setup):
        oracle, flat, tree, _packets = setup
        # Port expansion is inherent; the tree neither adds nor loses rows.
        assert flat.rows == tree.leaf_rows == oracle.total_tcam_rows()

    def test_tree_narrows_keys(self, setup):
        _oracle, flat, tree, _packets = setup
        assert tree.tcam_bits() < flat.table.tcam_bits()

    def test_sram_rendering_is_infeasible(self, setup):
        """§2.6: pseudo-random fields defeat exact-match expansion."""
        _oracle, _flat, tree, _packets = setup
        assert tree.exact_expansion_rows() > 10**12

    def test_layouts_map(self, setup):
        _oracle, flat, tree, _packets = setup
        flat_map = map_to_ideal_rmt(flat.layout())
        tree_map = map_to_ideal_rmt(tree.layout())
        assert flat_map.stages == 1  # one monolithic table...
        assert tree_map.stages > 1  # ...vs a staged pipeline
        assert flat_map.tcam_blocks > 0 and tree_map.tcam_blocks > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TcamClassifier([])
        with pytest.raises(ValueError):
            TreeClassifier([])


class TestWorkload:
    def test_hit_fraction(self):
        rules = synthesize_classifier(60, seed=4)
        oracle = Classifier(rules)
        packets = classifier_workload(rules, 400, seed=5, hit_fraction=1.0)
        hits = sum(1 for p in packets if oracle.classify(p) is not None)
        assert hits == 400
