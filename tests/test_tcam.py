"""Unit tests for the TCAM simulator."""

import pytest

from repro.memory import TcamTable, prefix_mask
from repro.prefix import from_bitstring


def P(s, width=8):
    return from_bitstring(s, width)


class TestBasics:
    def test_miss_on_empty(self):
        assert TcamTable(8).search(0) is None

    def test_exact_ternary_entry(self):
        t = TcamTable(8)
        t.insert(0b10100000, 0b11110000, priority=0, data="x")
        assert t.search(0b10101111) == "x"
        assert t.search(0b10010000) is None

    def test_value_outside_mask_rejected(self):
        t = TcamTable(8)
        with pytest.raises(ValueError):
            t.insert(0b00001111, 0b11110000, 0, "x")

    def test_value_exceeding_width_rejected(self):
        t = TcamTable(4)
        with pytest.raises(ValueError):
            t.insert(0x1F, 0x1F, 0, "x")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            TcamTable(0)


class TestPriority:
    def test_lower_priority_number_wins(self):
        t = TcamTable(8)
        t.insert(0b10000000, 0b10000000, priority=5, data="short")
        t.insert(0b10100000, 0b11100000, priority=2, data="long")
        assert t.search(0b10100001) == "long"
        assert t.search(0b10000001) == "short"

    def test_insertion_order_breaks_ties(self):
        t = TcamTable(8)
        t.insert(0b10000000, 0b11000000, priority=1, data="first")
        t.insert(0b10000000, 0b11000000, priority=1, data="second")
        assert t.search(0b10000001) == "first"


class TestPrefixApi:
    def test_insert_prefix_lpm(self):
        t = TcamTable(8)
        t.insert_prefix(P("01"), "short")
        t.insert_prefix(P("0101"), "long")
        assert t.search(0b01010000) == "long"
        assert t.search(0b01100000) == "short"

    def test_narrow_prefix_in_wide_key(self):
        # A 4-bit-wide prefix matching the top of an 8-bit key.
        t = TcamTable(8)
        t.insert_prefix(from_bitstring("01", 4), "x")
        assert t.search(0b01110000) == "x"
        assert t.search(0b10000000) is None

    def test_prefix_wider_than_key_rejected(self):
        t = TcamTable(4)
        with pytest.raises(ValueError):
            t.insert_prefix(P("01", 8), "x")

    def test_delete_prefix(self):
        t = TcamTable(8)
        t.insert_prefix(P("01"), "a")
        t.insert_prefix(P("0101"), "b")
        t.delete_prefix(P("0101"))
        assert t.search(0b01010000) == "a"
        with pytest.raises(KeyError):
            t.delete_prefix(P("0101"))

    def test_reinsert_prefix_replaces_data(self):
        # A TCAM row write overwrites the row: re-announcing a prefix
        # with a new next hop must not leave a stale duplicate entry
        # shadowing the update (caught by the churn differential
        # checker via a next-hop modify).
        t = TcamTable(8)
        t.insert_prefix(P("0101"), "old")
        t.insert_prefix(P("0101"), "new")
        assert t.search(0b01010000) == "new"
        assert len(t) == 1
        t.delete_prefix(P("0101"))
        assert t.search(0b01010000) is None

    def test_search_after_mutation_uses_fresh_index(self):
        t = TcamTable(8)
        t.insert_prefix(P("01"), "a")
        assert t.search(0b01000000) == "a"
        t.insert_prefix(P("0100"), "b")
        assert t.search(0b01000000) == "b"
        t.delete_prefix(P("0100"))
        assert t.search(0b01000000) == "a"


class TestAccounting:
    def test_tcam_bits_counts_value_component_only(self):
        t = TcamTable(32)
        for i in range(10):
            t.insert_prefix(from_bitstring(format(i, "08b"), 32), "h")
        assert t.tcam_bits() == 10 * 32

    def test_sram_bits_for_data(self):
        t = TcamTable(8)
        t.insert_prefix(P("01"), 1)
        t.insert_prefix(P("10"), 2)
        assert t.sram_bits(data_width=8) == 16


def test_prefix_mask():
    assert prefix_mask(0, 8) == 0
    assert prefix_mask(3, 8) == 0b11100000
    assert prefix_mask(8, 8) == 0xFF
    with pytest.raises(ValueError):
        prefix_mask(9, 8)


class TestIndexAgainstNaiveScan:
    """Differential fuzz: the mask-group search index must agree with a
    naive priority-ordered linear scan on arbitrary entry mixes."""

    def test_randomized_equivalence(self):
        import random

        rng = random.Random(99)
        for trial in range(30):
            table = TcamTable(12)
            entries = []
            for priority in range(rng.randrange(1, 20)):
                length = rng.randrange(0, 13)
                mask = ((1 << length) - 1) << (12 - length)
                value = rng.getrandbits(12) & mask
                table.insert(value, mask, priority, data=(priority, value))
                entries.append((priority, value, mask))
            entries.sort(key=lambda e: e[0])
            for _ in range(50):
                key = rng.getrandbits(12)
                naive = next(
                    ((p, v) for p, v, m in entries if key & m == v & m), None
                )
                assert table.search(key) == naive, (trial, key)

    def test_interleaved_mutation_equivalence(self):
        import random

        rng = random.Random(7)
        table = TcamTable(10)
        live = []
        for _ in range(120):
            if live and rng.random() < 0.35:
                priority, value, mask = live.pop(rng.randrange(len(live)))
                table.delete(value, mask)
            else:
                length = rng.randrange(0, 11)
                mask = ((1 << length) - 1) << (10 - length)
                value = rng.getrandbits(10) & mask
                priority = rng.randrange(0, 11)
                if any(v == value and m == mask for _p, v, m in live):
                    continue
                table.insert(value, mask, priority, data=(priority, value))
                live.append((priority, value, mask))
            ordered = sorted(live, key=lambda e: e[0])
            for _ in range(10):
                key = rng.getrandbits(10)
                naive = next(
                    ((p, v) for p, v, m in ordered if key & m == v & m), None
                )
                got = table.search(key)
                # Equal-priority overlaps may tie-break differently
                # across masks; require agreement on the priority.
                if naive is None:
                    assert got is None
                else:
                    assert got is not None and got[0] == naive[0]
