"""Unit tests for the batch dataplane engine (``repro.engine``).

Covers the plan compiler's error paths, the skew-aware FIB cache
(hybrid eviction, invalidation, tally seeding), the engine's counters
and cache wiring, the commit-listener contract with the managed
runtime, both sharding disciplines, and the ``repro serve`` CLI.
"""

import json

import pytest

from repro.algorithms import LogicalTcam, Resail
from repro.cli import main
from repro.control import ChurnGenerator, FaultPlan, ManagedFib, RuntimePolicy
from repro.core import PlanError, compile_plan
from repro.datasets import mixed_addresses, skewed_addresses, small_example_fib
from repro.engine import (
    BatchEngine,
    FibCache,
    RoundRobinEngine,
    VrfShardedEngine,
)
from repro.prefix import Fib, Prefix


def p(bits, length, width=8):
    return Prefix.from_bits(bits, length, width)


# ----------------------------------------------------------------------
# FibCache
# ----------------------------------------------------------------------
class TestFibCache:
    def test_probe_miss_then_hit(self):
        cache = FibCache(4)
        assert cache.probe(10) == (False, None)
        cache.put(10, 7)
        assert cache.probe(10) == (True, 7)
        assert cache.stats.reads == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_caches_negative_answers(self):
        cache = FibCache(4)
        cache.put(99, None)
        assert cache.probe(99) == (True, None)

    def test_capacity_is_enforced(self):
        cache = FibCache(3)
        for address in range(10):
            cache.put(address, address)
        assert len(cache) == 3

    def test_eviction_prefers_cold_over_recent(self):
        # Hybrid policy: among the `sample` oldest entries the lowest
        # hit count goes first, so a hot-but-old entry survives a scan.
        cache = FibCache(4, sample=4)
        for address in (1, 2, 3, 4):
            cache.put(address, address)
        for _ in range(5):
            cache.probe(1)  # 1 is oldest but hot
        cache.put(5, 5)  # overflow: evicts 2 (cold), not 1
        assert 1 in cache
        assert 2 not in cache

    def test_invalidate_drops_only_covered_addresses(self):
        cache = FibCache(8)
        for address in (0x10, 0x11, 0x80, 0xFF):
            cache.put(address, 1)
        dropped = cache.invalidate([p(0b0001, 4)])  # 0x10..0x1F
        assert dropped == 2
        assert sorted(a for a, _ in cache.items()) == [0x80, 0xFF]

    def test_invalidate_empty_is_noop(self):
        cache = FibCache(4)
        cache.put(1, 1)
        assert cache.invalidate([]) == 0
        assert len(cache) == 1

    def test_seed_from_tally_ranks_by_count(self):
        cache = FibCache(2)
        tally = {5: 100, 6: 1, 7: 50}
        seeded = cache.seed(tally, resolve=lambda a: a * 10)
        assert seeded == 2
        assert dict(cache.items()) == {5: 50, 7: 70}

    def test_seeded_weights_feed_eviction(self):
        cache = FibCache(2, sample=2)
        cache.seed({5: 100, 7: 2}, resolve=lambda a: a)
        cache.put(9, 9)  # evicts 7 (count 2), keeps 5 (count 100)
        assert 5 in cache and 7 not in cache

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FibCache(0)
        with pytest.raises(ValueError):
            FibCache(4, sample=0)

    def test_hit_rate_and_clear(self):
        cache = FibCache(4)
        cache.put(1, 1)
        cache.probe(1)
        cache.probe(2)
        assert cache.hit_rate() == pytest.approx(0.5)
        assert cache.clear() == 1
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Plan compiler error paths (happy paths live in test_engine_conformance)
# ----------------------------------------------------------------------
class TestPlanErrors:
    def test_unknown_backing_step_is_rejected(self, example_fib):
        algo = LogicalTcam(example_fib)
        algo.plan_backings = lambda: {"no-such-step": lambda key: None}
        with pytest.raises(PlanError, match="no-such-step"):
            compile_plan(algo)

    def test_describe_reports_schedule(self, example_fib):
        plan = compile_plan(LogicalTcam(example_fib))
        doc = plan.describe()
        assert doc["algorithm"] and doc["width"] == example_fib.width
        assert doc["steps"] == len(plan) == len(doc["step_names"])
        assert doc["waves"] >= 1


# ----------------------------------------------------------------------
# BatchEngine
# ----------------------------------------------------------------------
class TestBatchEngine:
    def test_cacheless_engine_matches_oracle(self, example_fib):
        engine = BatchEngine(LogicalTcam(example_fib))
        addresses = list(range(0, 256, 3))
        assert engine.lookup_batch(addresses) == [
            example_fib.lookup(a) for a in addresses
        ]
        assert engine.cache is None

    def test_cache_serves_repeats_and_counts(self, example_fib):
        engine = BatchEngine(LogicalTcam(example_fib), cache_size=16,
                             name="t")
        addresses = [1, 2, 1, 1, 2, 3]
        hops = engine.lookup_batch(addresses)
        assert hops == [example_fib.lookup(a) for a in addresses]
        reg = engine.registry
        assert reg.counter("repro_engine_lookups_total", "").value(engine="t") == 6
        assert reg.counter("repro_engine_cache_hits_total", "").value(engine="t") == 3
        assert reg.counter("repro_engine_cache_misses_total", "").value(engine="t") == 3
        assert reg.counter("repro_engine_batches_total", "").value(engine="t") == 1

    def test_refresh_rebinds_and_invalidates_scoped(self, example_fib):
        engine = BatchEngine(LogicalTcam(example_fib), cache_size=16)
        engine.warm([0x10, 0x80])
        changed = Fib(8, list(example_fib))
        changed.insert(p(0b0001, 4), 9)  # covers 0x10..0x1F
        engine.refresh(LogicalTcam(changed), touched=[p(0b0001, 4)])
        assert 0x10 not in engine.cache  # invalidated
        assert 0x80 in engine.cache  # untouched prefix stays cached
        assert engine.lookup(0x10) == 9  # fresh answer from the new plan

    def test_refresh_without_extent_clears_everything(self, example_fib):
        engine = BatchEngine(LogicalTcam(example_fib), cache_size=16)
        engine.warm([0x10, 0x80])
        engine.refresh()
        assert len(engine.cache) == 0
        assert engine.registry.counter(
            "repro_engine_plan_recompiles_total", ""
        ).value(engine="engine") == 1

    def test_seed_cache_resolves_through_plan(self, example_fib):
        engine = BatchEngine(LogicalTcam(example_fib), cache_size=8)
        assert engine.seed_cache({0x10: 5, 0x80: 3}) == 2
        hit, hop = engine.cache.probe(0x10)
        assert hit and hop == example_fib.lookup(0x10)

    def test_seed_cache_without_cache_is_zero(self, example_fib):
        assert BatchEngine(LogicalTcam(example_fib)).seed_cache({1: 1}) == 0


# ----------------------------------------------------------------------
# Managed-runtime integration (commit-listener contract)
# ----------------------------------------------------------------------
class TestManagedIntegration:
    def _managed(self, fib, **kwargs):
        return ManagedFib(lambda f: LogicalTcam(f), fib, **kwargs)

    def test_landed_batch_refreshes_engine(self, example_fib):
        managed = self._managed(example_fib)
        engine = BatchEngine.over_managed(managed, cache_size=32, name="m")
        addresses = list(range(0, 256, 5))
        engine.lookup_batch(addresses)
        for batch in ChurnGenerator(example_fib, seed=3).batches(24, 8):
            managed.apply_batch(batch)
        assert engine.lookup_batch(addresses) == [
            managed.oracle.lookup(a) for a in addresses
        ]
        reg = managed.registry  # shared by default
        assert reg is engine.registry
        commits = reg.counter("repro_engine_commits_total", "")
        landed = (commits.value(engine="m", outcome="batch_applied")
                  + commits.value(engine="m", outcome="batch_rebuilt"))
        assert landed == 3
        assert reg.counter(
            "repro_engine_plan_recompiles_total", "").value(engine="m") == 3

    def test_rollback_does_not_notify(self, example_fib):
        # rebuild_budget=0 + max_retries=0: any persistent fault rolls
        # the batch back instead of rebuilding.
        managed = self._managed(
            example_fib,
            policy=RuntimePolicy(max_retries=0, rebuild_budget=0),
            faults=FaultPlan.build(["mid_update_exception"], seed=1, rate=1.0),
        )
        engine = BatchEngine.over_managed(managed, cache_size=16)
        engine.warm(list(range(16)))
        before = dict(engine.cache.items())
        ops = list(ChurnGenerator(example_fib, seed=4).ops(6))
        outcome = managed.apply_batch(ops)
        assert outcome == "batch_rolled_back"
        # No listener fired: same plan, same cache, answers still right.
        assert dict(engine.cache.items()) == before
        assert engine.registry.counter(
            "repro_engine_plan_recompiles_total", "").value(engine="engine") == 0
        for address in range(16):
            assert engine.lookup(address) == managed.oracle.lookup(address)

    def test_listener_can_be_removed(self, example_fib):
        managed = self._managed(example_fib)
        engine = BatchEngine.over_managed(managed)
        managed.remove_commit_listener(engine.on_commit)
        for batch in ChurnGenerator(example_fib, seed=5).batches(8, 8):
            managed.apply_batch(batch)
        assert engine.registry.counter(
            "repro_engine_plan_recompiles_total", "").value(engine="engine") == 0


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
class TestVrfSharding:
    def test_per_vrf_isolation(self):
        sharded = VrfShardedEngine(8, lambda f: LogicalTcam(f),
                                   shards=2, max_vrfs=4)
        red = Fib(8, [(p(0b1, 1), 1)])
        blue = Fib(8, [(p(0b1, 1), 2)])
        sharded.add_vrf(0, red)
        sharded.add_vrf(1, blue)
        assert sharded.lookup(0, 0xFF) == 1
        assert sharded.lookup(1, 0xFF) == 2
        assert sharded.lookup(0, 0x00) is None

    def test_batch_preserves_request_order(self):
        sharded = VrfShardedEngine(8, lambda f: LogicalTcam(f),
                                   shards=2, max_vrfs=4)
        for vrf_id in range(3):
            sharded.add_vrf(vrf_id, Fib(8, [(p(0b1, 1), vrf_id + 1)]))
        requests = [(v, 0xFF) for v in (2, 0, 1, 1, 2, 0)]
        assert sharded.lookup_batch(requests) == [3, 1, 2, 2, 3, 1]
        dispatch = sharded.registry.counter(
            "repro_engine_shard_dispatch_total", "")
        assert dispatch.value(shard=0) == 4  # VRFs 0 and 2
        assert dispatch.value(shard=1) == 2  # VRF 1

    def test_replacing_a_vrf_rebuilds_its_shard(self):
        sharded = VrfShardedEngine(8, lambda f: LogicalTcam(f),
                                   shards=1, max_vrfs=2, cache_size=8)
        sharded.add_vrf(0, Fib(8, [(p(0b1, 1), 1)]))
        assert sharded.lookup(0, 0xFF) == 1  # now cached
        sharded.add_vrf(0, Fib(8, [(p(0b1, 1), 7)]))
        assert sharded.lookup(0, 0xFF) == 7  # cache was cleared

    def test_unknown_vrf_and_bad_widths_raise(self):
        sharded = VrfShardedEngine(8, lambda f: LogicalTcam(f), max_vrfs=2)
        with pytest.raises(KeyError):
            sharded.lookup(0, 1)
        with pytest.raises(ValueError):
            sharded.add_vrf(0, Fib(16))
        with pytest.raises(ValueError):
            sharded.add_vrf(5, Fib(8))


class TestRoundRobin:
    def test_batches_rotate_and_agree(self, example_fib):
        rr = RoundRobinEngine(LogicalTcam(example_fib), replicas=3)
        addresses = list(range(0, 256, 7))
        expected = [example_fib.lookup(a) for a in addresses]
        for _ in range(4):  # wraps around the replica ring
            assert rr.lookup_batch(addresses) == expected
        dispatch = rr.registry.counter("repro_engine_shard_dispatch_total", "")
        assert dispatch.value(shard=0) == 2 * len(addresses)
        assert dispatch.value(shard=1) == len(addresses)

    def test_refresh_fans_out(self, example_fib):
        rr = RoundRobinEngine(LogicalTcam(example_fib), replicas=2,
                              cache_size=8)
        rr.lookup(0xFF)
        rr.lookup(0xFF)
        changed = Fib(8, list(example_fib))
        changed.insert(p(0b1, 1), 9)
        rr.refresh(LogicalTcam(changed), touched=None)
        assert rr.lookup(0xFF) == 9
        assert rr.lookup(0xFF) == 9  # both replicas see the new table


# ----------------------------------------------------------------------
# CLI: repro serve
# ----------------------------------------------------------------------
class TestServeCli:
    def test_smoke_round_robin(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        assert main(["serve", "--smoke", "--algo", "resail", "--seed", "7",
                     "--metrics-out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "lookups/s" in text
        assert "spot-checks" in text
        doc = json.loads(out.read_text())
        counters = doc["metrics"]["counters"]
        assert "repro_engine_lookups_total" in counters
        assert "repro_engine_plan_recompiles_total" in counters
        assert "repro_serve_batch" in doc["timings"]

    def test_smoke_vrf_hash(self, capsys):
        assert main(["serve", "--smoke", "--algo", "ltcam", "--vrfs", "3",
                     "--shards", "2", "--seed", "7"]) == 0
        assert "shard" in capsys.readouterr().out
