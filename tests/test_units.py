"""Unit tests for the memory unit model."""

import pytest

from repro.core import (
    KB,
    MB,
    SRAM_PAGE_BITS,
    TCAM_BLOCK_BITS,
    format_bits,
    sram_bits_to_pages,
    sram_pages_for_bits,
    sram_pages_for_table,
    tcam_bits_to_blocks,
    tcam_blocks_for_table,
)


class TestGeometry:
    def test_block_and_page_bits(self):
        assert TCAM_BLOCK_BITS == 44 * 512
        assert SRAM_PAGE_BITS == 128 * 1024
        assert SRAM_PAGE_BITS == 16 * KB  # a page is 16 KB

    def test_fractional_conversions(self):
        assert tcam_bits_to_blocks(TCAM_BLOCK_BITS) == 1.0
        assert sram_bits_to_pages(SRAM_PAGE_BITS // 2) == 0.5


class TestTcamBlocks:
    def test_entries_pack_512_per_block(self):
        assert tcam_blocks_for_table(512, 32) == 1
        assert tcam_blocks_for_table(513, 32) == 2
        assert tcam_blocks_for_table(0, 32) == 0

    def test_wide_keys_gang_blocks(self):
        # 64-bit IPv6 keys need two 44-bit block columns (§6.5.3).
        assert tcam_blocks_for_table(512, 64) == 2
        assert tcam_blocks_for_table(1024, 64) == 4

    def test_paper_logical_tcam_capacities(self):
        # Tables 8/9: 480 blocks cap pure TCAM at 245,760 IPv4 entries
        # and 122,880 IPv6 entries.
        assert tcam_blocks_for_table(245_760, 32) == 480
        assert tcam_blocks_for_table(245_761, 32) == 481
        assert tcam_blocks_for_table(122_880, 64) == 480


class TestSramPages:
    def test_narrow_rows_share_words(self):
        # 33-bit rows: 3 per 128-bit word.
        assert sram_pages_for_table(3 * 1024, 33) == 1
        assert sram_pages_for_table(3 * 1024 + 1, 33) == 2

    def test_wide_rows_span_words(self):
        # 200-bit rows need 2 words each.
        assert sram_pages_for_table(512, 200) == 1
        assert sram_pages_for_table(1025, 200) == 3  # 2050 words

    def test_zero_entries(self):
        assert sram_pages_for_table(0, 64) == 0

    def test_invalid_entry_bits(self):
        with pytest.raises(ValueError):
            sram_pages_for_table(1, 0)

    def test_raw_bits_pack_perfectly(self):
        assert sram_pages_for_bits(SRAM_PAGE_BITS) == 1
        assert sram_pages_for_bits(SRAM_PAGE_BITS + 1) == 2
        assert sram_pages_for_bits(0) == 0


class TestFormat:
    def test_paper_style_rendering(self):
        assert format_bits(3.13 * KB) == "3.13 KB"
        assert format_bits(8.58 * MB) == "8.58 MB"
        assert format_bits(12) == "12 b"
