"""Unit tests for the dRMT chip model."""

import pytest

from repro.algorithms import Bsic, Resail, Sail
from repro.chip import (
    DRMT,
    Layout,
    LogicalTable,
    MemoryKind,
    Phase,
    map_to_drmt,
    map_to_ideal_rmt,
)


def sram_table(entries, bits):
    return LogicalTable("t", MemoryKind.SRAM, entries=entries, key_width=0,
                        data_width=bits)


class TestDrmtModel:
    def test_memory_never_adds_rounds(self):
        """A huge table costs pool memory, not extra processor rounds."""
        layout = Layout("big", [Phase("p", [sram_table(10_000_000, 8)])])
        drmt = map_to_drmt(layout)
        ideal = map_to_ideal_rmt(layout)
        assert drmt.stages == 1
        assert ideal.stages > 1  # RMT must partition across MAUs

    def test_pool_totals_still_bound_feasibility(self):
        layout = Layout("too-big", [Phase("p", [sram_table(1601 * 16 * 1024, 8)])])
        assert not map_to_drmt(layout).feasible

    def test_alu_depth_still_costs_rounds(self):
        layout = Layout("alu", [Phase("p", [], dependent_alu_ops=4)])
        assert map_to_drmt(layout).stages == 2  # 4 ops at 2/round

    def test_drmt_never_slower_than_ideal_rmt(self, ipv4_fib):
        """RMT is a stricter dRMT (§2): rounds <= stages for every algorithm."""
        for algo in (Resail(ipv4_fib), Sail(ipv4_fib), Bsic(ipv4_fib, k=16)):
            layout = algo.layout()
            assert map_to_drmt(layout).stages <= map_to_ideal_rmt(layout).stages

    def test_resail_on_drmt_matches_cram_steps_plus_keycon(self, ipv4_fib):
        """With memory pooled, RESAIL's rounds track its step structure."""
        resail = Resail(ipv4_fib)
        drmt = map_to_drmt(resail.layout())
        # bitmaps+TCAM round, key-construction round, hash round.
        assert drmt.stages == 3

    def test_spec_memory_matches_tofino2(self):
        assert DRMT.tcam_blocks == 480
        assert DRMT.sram_pages == 1600
