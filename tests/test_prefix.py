"""Unit tests for repro.prefix.prefix."""

import pytest

from repro.prefix import IPV4_WIDTH, IPV6_WIDTH, Prefix, bitstring, from_bitstring


class TestConstruction:
    def test_from_bits_left_aligns(self):
        p = Prefix.from_bits(0b101, 3, width=8)
        assert p.value == 0b10100000
        assert p.length == 3
        assert p.bits == 0b101

    def test_rejects_nonzero_host_bits(self):
        with pytest.raises(ValueError):
            Prefix(0b10100001, 3, 8)

    def test_rejects_bits_wider_than_length(self):
        with pytest.raises(ValueError):
            Prefix.from_bits(0b1111, 3, 8)

    def test_rejects_length_beyond_width(self):
        with pytest.raises(ValueError):
            Prefix.from_bits(0, 9, 8)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Prefix(0, -1, 8)

    def test_default_prefix(self):
        p = Prefix.default(8)
        assert p.length == 0
        assert p.matches(0) and p.matches(255)

    def test_zero_length_with_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix.from_bits(1, 0, 8)

    def test_immutable(self):
        p = Prefix.from_bits(1, 1, 8)
        with pytest.raises(AttributeError):
            p.value = 0


class TestBitAccess:
    def test_bit_indexing_msb_first(self):
        p = Prefix.from_bits(0b101, 3, 8)
        assert [p.bit(i) for i in range(3)] == [1, 0, 1]

    def test_bit_out_of_range(self):
        p = Prefix.from_bits(0b101, 3, 8)
        with pytest.raises(IndexError):
            p.bit(3)

    def test_slice_within_length(self):
        p = Prefix.from_bits(0b110101, 6, 8)
        assert p.slice(0, 2) == 0b11
        assert p.slice(2, 4) == 0b0101

    def test_slice_reads_zero_padding(self):
        p = Prefix.from_bits(0b11, 2, 8)
        assert p.slice(0, 8) == 0b11000000

    def test_slice_bounds(self):
        p = Prefix.from_bits(0b11, 2, 8)
        with pytest.raises(IndexError):
            p.slice(4, 5)

    def test_empty_slice(self):
        assert Prefix.from_bits(0b11, 2, 8).slice(3, 0) == 0


class TestRelations:
    def test_matches(self):
        p = Prefix.from_bits(0b0101, 4, 8)
        assert p.matches(0b01010000)
        assert p.matches(0b01011111)
        assert not p.matches(0b01100000)

    def test_is_prefix_of(self):
        short = Prefix.from_bits(0b01, 2, 8)
        long = Prefix.from_bits(0b0110, 4, 8)
        assert short.is_prefix_of(long)
        assert short.is_prefix_of(short)
        assert not long.is_prefix_of(short)

    def test_is_prefix_of_different_width(self):
        assert not Prefix.from_bits(1, 1, 8).is_prefix_of(Prefix.from_bits(1, 1, 16))

    def test_truncate(self):
        p = Prefix.from_bits(0b0110, 4, 8)
        assert p.truncate(2) == Prefix.from_bits(0b01, 2, 8)
        with pytest.raises(ValueError):
            p.truncate(5)

    def test_child_and_extend(self):
        p = Prefix.from_bits(0b01, 2, 8)
        assert p.child(1) == Prefix.from_bits(0b011, 3, 8)
        assert p.extend(0b10, 2) == Prefix.from_bits(0b0110, 4, 8)
        with pytest.raises(ValueError):
            p.child(2)
        with pytest.raises(ValueError):
            Prefix.from_bits(0, 8, 8).child(0)

    def test_address_range(self):
        p = Prefix.from_bits(0b01, 2, 8)
        assert p.address_range() == (0b01000000, 0b01111111)

    def test_full_length_range_is_single_address(self):
        p = Prefix.from_bits(0xAB, 8, 8)
        assert p.address_range() == (0xAB, 0xAB)


class TestExpansion:
    def test_expansions_enumerates_descendants(self):
        p = Prefix.from_bits(0b1, 1, 4)
        got = sorted(x.bits for x in p.expansions(3))
        assert got == [0b100, 0b101, 0b110, 0b111]

    def test_expansion_to_same_length(self):
        p = Prefix.from_bits(0b10, 2, 4)
        assert list(p.expansions(2)) == [p]

    def test_expansion_shorter_rejected(self):
        with pytest.raises(ValueError):
            list(Prefix.from_bits(0b10, 2, 4).expansions(1))


class TestOrderingAndDisplay:
    def test_sort_order_value_then_length(self):
        a = Prefix.from_bits(0b0, 1, 8)
        b = Prefix.from_bits(0b00, 2, 8)
        c = Prefix.from_bits(0b1, 1, 8)
        assert sorted([c, b, a]) == [a, b, c]

    def test_ipv4_str(self):
        assert str(Prefix(0x0A000000, 8, IPV4_WIDTH)) == "10.0.0.0/8"

    def test_ipv6_str(self):
        p = Prefix(0x2001_0DB8_0000_0000, 32, IPV6_WIDTH)
        assert str(p) == "2001:db8:0:0::/32"

    def test_bitstring_roundtrip(self):
        p = from_bitstring("010100", 8)
        assert bitstring(p) == "010100"
        assert from_bitstring(bitstring(p), 8) == p

    def test_bitstring_rejects_junk(self):
        with pytest.raises(ValueError):
            from_bitstring("01a", 8)

    def test_hash_equality(self):
        assert hash(from_bitstring("01", 8)) == hash(from_bitstring("01", 8))
        assert from_bitstring("01", 8) != from_bitstring("01", 16)


class TestMalformedInput:
    """PrefixError hardening: every malformed spec is rejected with the
    dedicated error type (a ValueError subclass), never a silent wrong
    prefix or an unrelated exception."""

    def test_prefix_error_is_value_error(self):
        from repro.prefix import PrefixError

        assert issubclass(PrefixError, ValueError)

    @pytest.mark.parametrize("bits,length,width", [
        (0, -1, 8),          # negative length
        (0, 9, 8),           # length > width
        (0b1111, 3, 8),      # bits wider than length
        (1 << 32, 32, 32),   # bits wider than length at full width
        (-1, 4, 8),          # negative bits
        (1, 0, 8),           # /0 with significant bits
        (0, 0, 0),           # zero width
        (0, 0, -4),          # negative width
    ])
    def test_from_bits_rejects(self, bits, length, width):
        from repro.prefix import PrefixError

        with pytest.raises(PrefixError):
            Prefix.from_bits(bits, length, width)

    @pytest.mark.parametrize("value,length,width", [
        (0, -3, 32),            # negative length
        (0, 33, 32),            # length > width
        (1 << 32, 8, 32),       # value wider than width
        (-1, 8, 32),            # negative value
        (0b10100001, 3, 8),     # nonzero host bits
    ])
    def test_init_rejects(self, value, length, width):
        from repro.prefix import PrefixError

        with pytest.raises(PrefixError):
            Prefix(value, length, width)

    def test_from_bitstring_rejects_junk(self):
        from repro.prefix import PrefixError

        with pytest.raises(PrefixError):
            from_bitstring("01a", 8)
