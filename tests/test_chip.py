"""Unit tests for the chip models: layouts, ideal RMT, Tofino-2."""

import pytest

from repro.chip import (
    IDEAL_RMT,
    TOFINO2,
    Layout,
    LogicalTable,
    MemoryKind,
    Phase,
    allocate_table,
    map_to_ideal_rmt,
    map_to_tofino2,
    phase_stages,
)


def sram_table(entries, bits, **kw):
    return LogicalTable("t", MemoryKind.SRAM, entries=entries, key_width=0,
                        data_width=bits, **kw)


def tcam_table(entries, key, data=8, **kw):
    return LogicalTable("t", MemoryKind.TCAM, entries=entries, key_width=key,
                        data_width=data, **kw)


class TestSpecs:
    def test_tofino2_pipe_limits_match_paper(self):
        # Tables 8/9's "Tofino-2 Pipe Limit" row: 480 / 1600 / 20.
        assert TOFINO2.tcam_blocks == 480
        assert TOFINO2.sram_pages == 1600
        assert TOFINO2.stages == 20
        assert TOFINO2.tcam_blocks_per_stage == 24
        assert TOFINO2.sram_pages_per_stage == 80

    def test_ideal_rmt_differs_only_in_utilization_and_alu(self):
        assert IDEAL_RMT.sram_word_utilization == 1.0
        assert IDEAL_RMT.alu_ops_per_stage == 2
        assert TOFINO2.sram_word_utilization == 0.5
        assert TOFINO2.alu_ops_per_stage == 1


class TestLogicalTable:
    def test_direct_index_requires_power_of_two(self):
        with pytest.raises(ValueError):
            LogicalTable("t", MemoryKind.SRAM, entries=1000, key_width=10,
                         data_width=8, direct_index=True)

    def test_tcam_cannot_be_direct(self):
        with pytest.raises(ValueError):
            LogicalTable("t", MemoryKind.TCAM, entries=16, key_width=4,
                         data_width=8, direct_index=True)

    def test_entry_bits(self):
        exact = LogicalTable("t", MemoryKind.SRAM, entries=10, key_width=25,
                             data_width=8)
        assert exact.sram_entry_bits == 33
        direct = LogicalTable("t", MemoryKind.SRAM, entries=16, key_width=4,
                              data_width=8, direct_index=True)
        assert direct.sram_entry_bits == 8


class TestAllocateTable:
    def test_tcam_blocks_and_data_pages(self):
        alloc = allocate_table(tcam_table(1000, 32), 1.0)
        assert alloc.tcam_blocks == 2
        assert alloc.sram_pages == 1  # 8000 data bits

    def test_bitmap_exempt_from_utilization(self):
        bitmap = sram_table(1 << 20, 1, raw_bits=1 << 20, direct_index=False)
        assert allocate_table(bitmap, 1.0).sram_pages == 8
        assert allocate_table(bitmap, 0.5).sram_pages == 8  # unchanged

    def test_sram_derated_by_utilization(self):
        table = sram_table(4096, 64)
        assert allocate_table(table, 1.0).sram_pages == 2
        assert allocate_table(table, 0.5).sram_pages == 4

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            allocate_table(sram_table(10, 8), 0.0)


class TestPhaseStages:
    def test_memory_partitioned_across_stages(self):
        alloc = [allocate_table(sram_table(400 * 16 * 1024, 8), 1.0)]
        # 400 pages at 80/stage -> 5 stages.
        assert phase_stages(alloc, 1, IDEAL_RMT) == 5

    def test_alu_only_phase(self):
        assert phase_stages([], 2, IDEAL_RMT) == 1  # 2 ops, 2/stage
        assert phase_stages([], 2, TOFINO2) == 2  # 1 op/stage

    def test_bst_level_costs_double_on_tofino(self):
        alloc = [allocate_table(sram_table(100, 88), TOFINO2.sram_word_utilization)]
        assert phase_stages(alloc, 2, TOFINO2) == 2  # compare + act (§6.5.3)
        alloc_ideal = [allocate_table(sram_table(100, 88), 1.0)]
        assert phase_stages(alloc_ideal, 2, IDEAL_RMT) == 1

    def test_tcam_blocks_limit_stages(self):
        alloc = [allocate_table(tcam_table(480 * 512, 32), 1.0)]
        assert phase_stages(alloc, 1, IDEAL_RMT) == 20  # 480 blocks / 24


class TestMapLayout:
    def make_layout(self, pages_big=False):
        tables = [sram_table(16 * 1024 * (300 if pages_big else 1), 8)]
        return Layout("demo", [
            Phase("p1", tables, dependent_alu_ops=1),
            Phase("p2", [], dependent_alu_ops=2),
        ])

    def test_phases_sum_sequentially(self):
        mapping = map_to_ideal_rmt(self.make_layout())
        assert mapping.stages == 2  # 1 memory stage + 1 ALU stage

    def test_feasibility_bounds(self):
        small = map_to_ideal_rmt(self.make_layout())
        assert small.feasible
        huge = map_to_ideal_rmt(Layout("x", [
            Phase("p", [sram_table(1700 * 16 * 1024, 8)])
        ]))
        assert not huge.feasible  # 1700 pages > 1600

    def test_recirculation_only_on_tofino(self):
        # 25-stage program: infeasible on ideal RMT, recirculated on Tofino-2.
        phases = [Phase(f"p{i}", [], dependent_alu_ops=1) for i in range(25)]
        layout = Layout("deep", phases)
        ideal = map_to_ideal_rmt(layout)
        assert not ideal.feasible
        tofino = map_to_tofino2(layout)
        assert tofino.feasible
        assert tofino.recirculated
        assert not tofino.fits_single_pass

    def test_unaligned_key_costs_tofino_tcam_block(self):
        table = sram_table(1024, 32, unaligned_key=True)
        layout = Layout("x", [Phase("p", [table])])
        assert map_to_ideal_rmt(layout).tcam_blocks == 0
        assert map_to_tofino2(layout).tcam_blocks == 1

    def test_describe_mentions_chip(self):
        assert "Ideal RMT" in map_to_ideal_rmt(self.make_layout()).describe()


class TestLayoutScaled:
    def test_scales_entries_not_bitmaps(self):
        bitmap = sram_table(1 << 10, 1, raw_bits=1 << 10)
        normal = sram_table(100, 8)
        layout = Layout("x", [Phase("p", [bitmap, normal])])
        scaled = layout.scaled(3.0)
        t_bitmap, t_normal = scaled.phases[0].tables
        assert t_bitmap.entries == 1 << 10  # structural
        assert t_normal.entries == 300

    def test_negative_factor_rejected(self):
        layout = Layout("x", [Phase("p", [sram_table(10, 8)])])
        with pytest.raises(ValueError):
            layout.scaled(-1)


class TestFitReport:
    """tofino2_fit_report: the capacity guard's view of a layout."""

    def _layout(self, entries=1024):
        return Layout("x", [Phase("p", [sram_table(entries, 8),
                                        tcam_table(64, 32)])])

    def test_fitting_layout_has_no_reasons(self):
        from repro.chip import tofino2_fit_report

        mapping, reasons = tofino2_fit_report(self._layout())
        assert reasons == []
        assert mapping.feasible

    def test_reports_every_exceeded_limit(self):
        from repro.chip import tofino2_fit_report

        mapping, reasons = tofino2_fit_report(
            self._layout(), tcam_blocks=0, sram_pages=0
        )
        assert len(reasons) == 2
        assert any("TCAM blocks" in r for r in reasons)
        assert any("SRAM pages" in r for r in reasons)
        assert f"> budget 0" in reasons[0]

    def test_stage_budget_defaults_to_one_recirculation(self):
        from repro.chip import tofino2_fit_report

        phases = [Phase(f"p{i}", [], dependent_alu_ops=1) for i in range(25)]
        deep = Layout("deep", phases)
        _, reasons = tofino2_fit_report(deep)
        assert reasons == []  # 25 stages fit in 2 passes
        _, reasons = tofino2_fit_report(deep, stage_budget=20)
        assert reasons and "stages" in reasons[0]
