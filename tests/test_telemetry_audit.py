"""Static audit: telemetry stays inside ``repro.obs``.

The determinism contract (``control/events.py``, ``obs/registry.py``)
only holds if no other module under ``src/repro`` reaches for the wall
clock or prints ad-hoc telemetry.  This test parses every module and
enforces it:

* ``time`` (and ``datetime``) may only be imported inside ``repro.obs``
  — everything else must route wall-clock measurement through a
  :class:`repro.obs.MetricsRegistry` timer;
* ``print`` may only be called from ``repro.cli`` (the user interface)
  — library code reports through the registry, event log, or tracer.

Docstring examples don't count (the AST walk sees only real calls).
"""

import ast
import pathlib

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent

#: Modules (relative to the package root) allowed to import time.
TIME_ALLOWED_PREFIXES = ("obs/",)

#: Modules allowed to call print() — the CLI is the user interface.
PRINT_ALLOWED = ("cli.py",)

CLOCK_MODULES = {"time", "datetime"}


def _modules():
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        yield path.relative_to(PACKAGE_ROOT).as_posix(), path


MODULES = list(_modules())


def _clock_imports(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in CLOCK_MODULES:
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in CLOCK_MODULES:
                yield node.lineno, node.module


def _print_calls(tree: ast.AST):
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            yield node.lineno


@pytest.mark.parametrize("relative,path", MODULES,
                         ids=[rel for rel, _ in MODULES])
def test_no_clock_outside_obs(relative, path):
    if relative.startswith(TIME_ALLOWED_PREFIXES):
        pytest.skip("repro.obs owns the clock")
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = list(_clock_imports(tree))
    assert not offenders, (
        f"{relative} imports the clock {offenders}; wall-clock telemetry "
        "must go through repro.obs (MetricsRegistry.timer)"
    )


@pytest.mark.parametrize("relative,path", MODULES,
                         ids=[rel for rel, _ in MODULES])
def test_no_print_outside_cli(relative, path):
    if relative in PRINT_ALLOWED:
        pytest.skip("the CLI prints to the user by design")
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = list(_print_calls(tree))
    assert not offenders, (
        f"{relative} calls print() at lines {offenders}; library code "
        "reports through the registry, event log, or tracer"
    )


def test_obs_is_the_only_time_owner():
    """The inverse direction: the registry and the clock abstraction
    really do use the clock (so the allowlist isn't vacuous)."""
    owners = []
    for relative, path in MODULES:
        tree = ast.parse(path.read_text(), filename=str(path))
        if any(_clock_imports(tree)):
            owners.append(relative)
    assert owners == ["obs/clock.py", "obs/registry.py"]
