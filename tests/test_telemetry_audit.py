"""Static audit: telemetry stays inside ``repro.obs``.

The determinism contract (``control/events.py``, ``obs/registry.py``)
only holds if no other module under ``src/repro`` reaches for the wall
clock or prints ad-hoc telemetry.  This test parses every module and
enforces it:

* ``time`` (and ``datetime``) may only be imported inside ``repro.obs``
  — everything else must route wall-clock measurement through a
  :class:`repro.obs.MetricsRegistry` timer;
* ``print`` may only be called from ``repro.cli`` (the user interface)
  — library code reports through the registry, event log, or tracer;
* ``threading.Timer`` and the anonymous-event sleep idiom
  (``threading.Event().wait(delay)``) may only appear inside
  ``repro.obs`` — both are covert wall-clock timing that bypasses the
  :class:`repro.obs.Clock` abstraction, which is what keeps the
  serving stack (``repro.server``, ``repro.chaos``) drivable by a
  :class:`repro.obs.FakeClock` in tests.

Docstring examples don't count (the AST walk sees only real calls).
"""

import ast
import pathlib

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent

#: Modules (relative to the package root) allowed to import time.
TIME_ALLOWED_PREFIXES = ("obs/",)

#: Modules allowed to call print() — the CLI is the user interface.
PRINT_ALLOWED = ("cli.py",)

CLOCK_MODULES = {"time", "datetime"}


def _modules():
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        yield path.relative_to(PACKAGE_ROOT).as_posix(), path


MODULES = list(_modules())


def _clock_imports(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] in CLOCK_MODULES:
                    yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in CLOCK_MODULES:
                yield node.lineno, node.module


def _print_calls(tree: ast.AST):
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"):
            yield node.lineno


@pytest.mark.parametrize("relative,path", MODULES,
                         ids=[rel for rel, _ in MODULES])
def test_no_clock_outside_obs(relative, path):
    if relative.startswith(TIME_ALLOWED_PREFIXES):
        pytest.skip("repro.obs owns the clock")
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = list(_clock_imports(tree))
    assert not offenders, (
        f"{relative} imports the clock {offenders}; wall-clock telemetry "
        "must go through repro.obs (MetricsRegistry.timer)"
    )


@pytest.mark.parametrize("relative,path", MODULES,
                         ids=[rel for rel, _ in MODULES])
def test_no_print_outside_cli(relative, path):
    if relative in PRINT_ALLOWED:
        pytest.skip("the CLI prints to the user by design")
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = list(_print_calls(tree))
    assert not offenders, (
        f"{relative} calls print() at lines {offenders}; library code "
        "reports through the registry, event log, or tracer"
    )


def _is_threading_event_call(node: ast.AST) -> bool:
    """``threading.Event()`` or ``Event()`` (as a call expression)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return (func.attr == "Event"
                and isinstance(func.value, ast.Name)
                and func.value.id == "threading")
    return isinstance(func, ast.Name) and func.id == "Event"


def _covert_timing_calls(tree: ast.AST):
    """``threading.Timer(...)`` constructions and anonymous
    ``threading.Event().wait(...)`` sleeps."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute) and func.attr == "Timer"
                and isinstance(func.value, ast.Name)
                and func.value.id == "threading"):
            yield node.lineno, "threading.Timer"
        elif isinstance(func, ast.Name) and func.id == "Timer":
            yield node.lineno, "Timer"
        elif (isinstance(func, ast.Attribute) and func.attr == "wait"
                and _is_threading_event_call(func.value)):
            yield node.lineno, "threading.Event().wait"


@pytest.mark.parametrize("relative,path", MODULES,
                         ids=[rel for rel, _ in MODULES])
def test_no_covert_timing_outside_obs(relative, path):
    if relative.startswith(TIME_ALLOWED_PREFIXES):
        pytest.skip("repro.obs owns the clock")
    tree = ast.parse(path.read_text(), filename=str(path))
    offenders = list(_covert_timing_calls(tree))
    assert not offenders, (
        f"{relative} uses covert wall-clock timing {offenders}; sleeps "
        "and timers must go through the repro.obs Clock abstraction "
        "(clock.sleep / clock.call_at) so FakeClock tests stay exact"
    )


def test_audit_covers_the_serving_stack():
    """The ban really sweeps the serving and chaos layers — if one of
    these modules moved, the parametrised audits above would silently
    stop covering it."""
    covered = {rel for rel, _ in MODULES}
    for required in (
        "server/server.py",
        "server/coalescer.py",
        "server/pool.py",
        "server/procpool.py",
        "server/supervisor.py",
        "chaos/plan.py",
        "chaos/soak.py",
        "obs/spans.py",
        "obs/slo.py",
        "obs/status.py",
        "obs/trajectory.py",
    ):
        assert required in covered, f"{required} missing from the audit"


def test_obs_is_the_only_time_owner():
    """The inverse direction: the registry and the clock abstraction
    really do use the clock (so the allowlist isn't vacuous)."""
    owners = []
    for relative, path in MODULES:
        tree = ast.parse(path.read_text(), filename=str(path))
        if any(_clock_imports(tree)):
            owners.append(relative)
    assert owners == ["obs/clock.py", "obs/registry.py"]
