"""Focused tests for prefix-length distribution analysis (§6.1/§6.3)."""

import pytest

from repro.prefix import LengthDistribution, Prefix, scale_distribution


def dist_from(counts, width=32):
    arr = [0] * (width + 1)
    for length, count in counts.items():
        arr[length] = count
    return LengthDistribution(width, tuple(arr))


class TestBasics:
    def test_from_prefixes(self):
        prefixes = [Prefix.from_bits(0, 8, 32), Prefix.from_bits(1, 8, 32),
                    Prefix.from_bits(0, 16, 32)]
        dist = LengthDistribution.from_prefixes(prefixes, 32)
        assert dist.count(8) == 2 and dist.count(16) == 1
        assert dist.total == 3

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LengthDistribution.from_prefixes([Prefix.from_bits(0, 4, 8)], 32)

    def test_counting_helpers(self):
        dist = dist_from({8: 10, 16: 30, 24: 60})
        assert dist.count_longer_than(8) == 90
        assert dist.count_shorter_than(16) == 10
        assert dist.fraction_longer_than(16) == 0.6

    def test_empty_distribution(self):
        dist = dist_from({})
        assert dist.fraction_longer_than(0) == 0.0
        assert dist.spikes() == []
        with pytest.raises(ValueError):
            dist.major_spike()


class TestAdvisors:
    def test_shortest_significant_length(self):
        # 1 prefix below /13 out of 10,001: the 0.1% tail rule gives 13.
        dist = dist_from({8: 5, 24: 10_000})
        assert dist.shortest_significant_length(tail_fraction=0.001) == 24 or \
            dist.shortest_significant_length(tail_fraction=0.001) > 8
        # With a fatter allowance the /8s fit under the tail.
        assert dist.shortest_significant_length(tail_fraction=0.01) > 8

    def test_paper_min_bmp_rule(self):
        """P2: the AS65000 histogram puts min_bmp at 13."""
        from repro.datasets import ipv4_length_distribution

        dist = ipv4_length_distribution()
        assert dist.shortest_significant_length(tail_fraction=0.001) == 13

    def test_spike_threshold(self):
        dist = dist_from({8: 3, 16: 97})
        assert dist.spikes(threshold=0.05) == [16]
        assert set(dist.spikes(threshold=0.01)) == {8, 16}

    def test_scale_distribution(self):
        dist = dist_from({24: 100})
        scaled = scale_distribution(dist, 2.5)
        assert scaled.count(24) == 250
        with pytest.raises(ValueError):
            scale_distribution(dist, -1)

    def test_to_dict_omits_zeros(self):
        dist = dist_from({8: 5, 24: 10})
        assert dist.to_dict() == {8: 5, 24: 10}
