"""Unit tests for lookup workload generators."""

import pytest

from repro.datasets import (
    deepest_match_addresses,
    matching_addresses,
    mixed_addresses,
    uniform_addresses,
)
from repro.prefix import Fib


class TestUniform:
    def test_range_and_count(self):
        addrs = uniform_addresses(32, 1000, seed=1)
        assert len(addrs) == 1000
        assert all(0 <= a < (1 << 32) for a in addrs)

    def test_wide_addresses(self):
        addrs = uniform_addresses(64, 100, seed=1)
        assert all(0 <= a < (1 << 64) for a in addrs)
        assert any(a >> 32 for a in addrs)

    def test_deterministic(self):
        assert uniform_addresses(32, 50, seed=3) == uniform_addresses(32, 50, seed=3)


class TestMatching:
    def test_every_address_hits(self, ipv4_fib):
        for addr in matching_addresses(ipv4_fib, 500):
            assert ipv4_fib.lookup(addr) is not None

    def test_empty_fib_rejected(self):
        with pytest.raises(ValueError):
            matching_addresses(Fib(32), 10)


class TestMixed:
    def test_hit_fraction_respected(self, ipv4_fib):
        addrs = mixed_addresses(ipv4_fib, 1000, hit_fraction=0.9, seed=4)
        hits = sum(1 for a in addrs if ipv4_fib.lookup(a) is not None)
        assert hits >= 850  # 900 guaranteed hits, misses may also hit

    def test_invalid_fraction(self, ipv4_fib):
        with pytest.raises(ValueError):
            mixed_addresses(ipv4_fib, 10, hit_fraction=1.5)


class TestDeepest:
    def test_matches_longest_prefixes(self, ipv4_fib):
        max_len = max(p.length for p in ipv4_fib.prefixes())
        for addr in deepest_match_addresses(ipv4_fib, 200):
            prefix = ipv4_fib.lookup_prefix(addr)
            assert prefix is not None
            assert prefix.length == max_len
