"""Unit + property tests for ORTC route aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix import Fib, Prefix, aggregate, aggregation_ratio, from_bitstring, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


def B(s):
    return from_bitstring(s, 8)


class TestHandExamples:
    def test_sibling_merge(self):
        """Two sibling /2s with the same hop collapse into a /1."""
        fib = Fib(8, [(B("00"), 5), (B("01"), 5)])
        result = aggregate(fib)
        assert list(result.fib) == [(B("0"), 5)]
        assert not result.used_discard

    def test_child_redundant_with_parent(self):
        fib = Fib(8, [(B("0"), 5), (B("01"), 5), (B("00"), 3)])
        result = aggregate(fib)
        # One of the two labelings {0->5, 00->3} / {0->3, 01->5}: both
        # are minimal at two entries and behaviourally identical.
        assert len(result) == 2
        for addr in range(256):
            assert result.lookup(addr) == fib.lookup(addr)

    def test_classic_default_flip(self):
        """Majority-hop promotion: 3 of 4 leaves share a hop."""
        fib = Fib(8, [(B("00"), 1), (B("01"), 1), (B("10"), 1), (B("11"), 2)])
        result = aggregate(fib)
        assert len(result) == 2  # */0 -> 1 plus 11/2 -> 2
        assert result.fib.get(Prefix.default(8)) == 1
        assert result.fib.get(B("11")) == 2

    def test_discard_needed_for_uncovered_hole(self):
        """An uncovered region under a promoted cover needs a null route."""
        fib = Fib(8, [(B("00"), 9), (B("01"), 1), (B("10"), 1), (B("11"), 2)])
        # Aggregation may or may not choose a covering route here; what
        # matters is behaviour.  Force the classic stuck shape:
        fib2 = Fib(8, [(B("01"), 1), (B("10"), 1), (B("11"), 1)])
        result = aggregate(fib2)
        for addr in range(256):
            assert result.lookup(addr) == fib2.lookup(addr)

    def test_never_larger_than_input(self, ipv4_fib):
        result = aggregate(ipv4_fib)
        assert len(result) <= len(ipv4_fib)

    def test_discard_hop_collision_rejected(self):
        fib = Fib(8, [(B("0"), 3)])
        with pytest.raises(ValueError):
            aggregate(fib, discard_hop=3)

    def test_ratio(self):
        fib = Fib(8, [(B("00"), 5), (B("01"), 5)])
        result = aggregate(fib)
        assert aggregation_ratio(fib, result) == 2.0


class TestEquivalence:
    def test_exhaustive_small_universe(self):
        import random

        rng = random.Random(13)
        for trial in range(40):
            fib = Fib(8)
            for _ in range(rng.randrange(1, 14)):
                length = rng.randrange(0, 9)
                bits = rng.getrandbits(length) if length else 0
                fib.insert(Prefix.from_bits(bits, length, 8), rng.randrange(4))
            result = aggregate(fib)
            for addr in range(256):
                assert result.lookup(addr) == fib.lookup(addr), (trial, addr)
            assert len(result) <= len(fib)

    def test_synthetic_ipv4_table(self, ipv4_fib, ipv4_addresses):
        result = aggregate(ipv4_fib)
        assert len(result) < len(ipv4_fib)  # real tables always shrink
        for addr in ipv4_addresses:
            assert result.lookup(addr) == ipv4_fib.lookup(addr)

    def test_covered_space_needs_no_discard(self):
        """With a default route nothing is uncovered."""
        fib = Fib(8, [(Prefix.default(8), 0), (B("01"), 1), (B("0111"), 2)])
        result = aggregate(fib)
        assert not result.used_discard

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 8).flatmap(
            lambda n: st.tuples(st.just(n), st.integers(0, (1 << n) - 1 if n else 0))
        ), st.integers(0, 7)),
        max_size=16,
    ))
    def test_property_equivalence(self, raw):
        fib = Fib(8)
        seen = set()
        for (length, bits), hop in raw:
            prefix = Prefix.from_bits(bits, length, 8)
            if prefix not in seen:
                seen.add(prefix)
                fib.insert(prefix, hop)
        if len(fib) == 0:
            return
        result = aggregate(fib)
        for addr in range(0, 256, 3):
            assert result.lookup(addr) == fib.lookup(addr)
        assert len(result) <= len(fib)
