"""Unit tests for the CRAM interpreter."""

import pytest

from repro.core import (
    Assoc,
    Bin,
    Const,
    CramProgram,
    Reg,
    Statement,
    Step,
    direct_index_table,
    run,
    run_packet,
)


def build_doubler():
    """A two-step program: table lookup, then arithmetic on the result."""
    prog = CramProgram("doubler", registers=["addr", "val", "out"])
    table = direct_index_table(
        "squares", 4, 8,
        key_selector=lambda s: s["addr"] & 15,
        backing=lambda k: k * k,
    )
    prog.add_step(Step("lookup", table=table, reads=["addr"], writes=["val"],
                       statements=[Statement("val", Assoc(0))]))
    prog.add_step(Step("double", reads=["val"], writes=["out"],
                       statements=[Statement("out", Bin("+", Reg("val"), Reg("val")))]),
                  after=["lookup"])
    return prog


class TestRun:
    def test_sequential_dataflow(self):
        state = run(build_doubler(), {"addr": 5})
        assert state["val"] == 25
        assert state["out"] == 50

    def test_unknown_register_rejected(self):
        with pytest.raises(KeyError):
            run(build_doubler(), {"bogus": 1})

    def test_parallel_steps_see_snapshot(self):
        """Two parallel steps must both read the pre-wave value."""
        prog = CramProgram("p", registers=["a", "x", "y"])
        prog.add_step(Step("s1", reads=["a"], writes=["x"],
                           statements=[Statement("x", Bin("+", Reg("a"), Const(1)))]))
        prog.add_step(Step("s2", reads=["a"], writes=["y"],
                           statements=[Statement("y", Bin("+", Reg("a"), Const(2)))]))
        state = run(prog, {"a": 10})
        assert (state["x"], state["y"]) == (11, 12)

    def test_skipped_lookup_via_none_key(self):
        prog = CramProgram("p", registers=["addr", "val"])
        table = direct_index_table(
            "t", 4, 8,
            key_selector=lambda s: None,  # predicated off
            backing=lambda k: 123,
        )
        prog.add_step(Step("lookup", table=table, reads=["addr"], writes=["val"],
                           action=lambda s, r: s.__setitem__("val", r)))
        assert run(prog, {"addr": 1})["val"] is None

    def test_validates_before_running(self):
        prog = CramProgram("p", registers=["x"])
        prog.add_step(Step("a", writes=["x"]))
        prog.add_step(Step("b", writes=["x"]))
        with pytest.raises(Exception):
            run(prog, {})


class TestRunPacket:
    def test_parser_deparser_pipeline(self):
        prog = build_doubler()
        prog.parser = lambda packet: {"addr": packet[0]}
        prog.deparser = lambda state: bytes([state["out"] & 0xFF])
        assert run_packet(prog, bytes([3])) == bytes([18])

    def test_missing_parser_rejected(self):
        with pytest.raises(RuntimeError):
            run_packet(build_doubler(), b"\x00")
