"""Unit tests for the chaos harness (:mod:`repro.chaos`).

The plan tests prove the scheduling contract — every fault decision is
a pure function of ``(name, seed, worker, seq)`` — and the soak tests
run the real harness end-to-end in both pool modes at a small request
count (the CI soak at full size runs through ``make chaos``).
"""

import pytest

from repro.chaos import (
    ALL_CHAOS,
    AckDropFault,
    ChaosBatchFault,
    ChaosEngine,
    ChaosPlan,
    CommitStallFault,
    SoakFailure,
    WorkerKillFault,
    run_chaos_soak,
)
from repro.control.faults import ALL_FAULTS, FaultPlan
from repro.server import WorkerCrash


class CountingEngine:
    def __init__(self):
        self.calls = 0

    def lookup_batch(self, addresses):
        self.calls += 1
        return [None] * len(addresses)

    def set_backend(self, backend):
        self.backend = backend


# ---------------------------------------------------------------------------
# ChaosPlan scheduling
# ---------------------------------------------------------------------------


class TestChaosPlan:
    def test_decisions_are_pure_functions_of_the_key(self):
        a = ChaosPlan.build(sorted(ALL_CHAOS), seed=5)
        b = ChaosPlan.build(sorted(ALL_CHAOS), seed=5)
        # Same (worker, seq) keys in a different query order: identical.
        keys = [(w, s) for w in range(3) for s in range(50)]
        got_a = {k: (a.batch_action(*k), a.ack_action(*k)) for k in keys}
        got_b = {k: (b.batch_action(*k), b.ack_action(*k))
                 for k in reversed(keys)}
        assert got_a == got_b
        # A different seed reshuffles the schedule.
        c = ChaosPlan.build(sorted(ALL_CHAOS), seed=6)
        got_c = {k: (c.batch_action(*k), c.ack_action(*k)) for k in keys}
        assert got_a != got_c

    def test_rate_zero_never_fires_rate_one_always(self):
        silent = ChaosPlan.build(["worker_kill"], seed=0, rate=0.0)
        noisy = ChaosPlan.build(["worker_kill"], seed=0, rate=1.0)
        assert all(silent.batch_action(w, s) is None
                   for w in range(2) for s in range(20))
        assert all(noisy.batch_action(w, s) == "crash"
                   for w in range(2) for s in range(20))

    def test_script_triggers_exactly(self):
        plan = ChaosPlan([], script=[("kill", 1, 7), ("raise", 0, 3),
                                     ("ack_drop", 2, 1), ("ack_delay", 0, 0)])
        assert plan.batch_action(1, 7) == "crash"
        assert plan.batch_action(0, 3) == "raise"
        assert plan.batch_action(1, 6) is None
        assert plan.ack_action(2, 1) == (0.0, True)
        delay_s, drop = plan.ack_action(0, 0)
        assert delay_s > 0 and not drop
        assert plan.ack_action(2, 2) is None

    def test_script_wins_over_rate_injectors(self):
        plan = ChaosPlan([WorkerKillFault(seed=0, rate=0.0)],
                         script=[("kill", 0, 0)])
        assert plan.batch_action(0, 0) == "crash"

    def test_rejects_unknown_names_and_script_kinds(self):
        with pytest.raises(ValueError, match="unknown chaos faults"):
            ChaosPlan.build(["no_such_fault"], seed=0)
        with pytest.raises(ValueError, match="unknown script kind"):
            ChaosPlan([], script=[("explode", 0, 0)])

    def test_commit_stall_takes_the_max(self):
        plan = ChaosPlan([CommitStallFault(seed=0, rate=1.0, stall_s=0.01),
                          CommitStallFault(seed=1, rate=1.0, stall_s=0.03)])
        assert plan.commit_stall(0) == 0.03
        assert ChaosPlan.none().commit_stall(0) == 0.0

    def test_registry_mirrors_the_control_plane_idiom(self):
        # Same named-registry + seeded build() contract as FaultPlan.
        assert set(ALL_CHAOS) == {"worker_kill", "batch_exception",
                                  "ack_delay", "ack_drop", "commit_stall"}
        assert not set(ALL_CHAOS) & set(ALL_FAULTS)  # disjoint namespaces
        fault_plan = FaultPlan.build(sorted(ALL_FAULTS), seed=1)
        chaos_plan = ChaosPlan.build(sorted(ALL_CHAOS), seed=1)
        assert fault_plan.names() == sorted(ALL_FAULTS)
        assert [i.name for i in chaos_plan.injectors] == sorted(ALL_CHAOS)

    def test_ack_drop_fault_shape(self):
        drop = AckDropFault(seed=0, rate=1.0)
        assert drop.ack_action(0, 0) == (0.0, True)


# ---------------------------------------------------------------------------
# ChaosEngine (thread-mode adapter)
# ---------------------------------------------------------------------------


class TestChaosEngine:
    def test_kill_raises_worker_crash_before_executing(self):
        inner = CountingEngine()
        engine = ChaosEngine(inner, ChaosPlan([], script=[("kill", 0, 1)]),
                             worker=0)
        engine.lookup_batch([1])  # seq 0: clean
        with pytest.raises(WorkerCrash):
            engine.lookup_batch([2])  # seq 1: scripted kill
        assert inner.calls == 1  # the killed batch never executed

    def test_raise_throws_retry_safe_fault(self):
        engine = ChaosEngine(CountingEngine(),
                             ChaosPlan([], script=[("raise", 0, 0)]),
                             worker=0)
        with pytest.raises(ChaosBatchFault) as info:
            engine.lookup_batch([1])
        assert info.value.retry_safe

    def test_sequence_survives_across_calls_and_delegates(self):
        inner = CountingEngine()
        engine = ChaosEngine(inner, ChaosPlan.none(), worker=3)
        for _ in range(5):
            engine.lookup_batch([1, 2])
        assert engine._seq == 5 and inner.calls == 5
        engine.set_backend("plan")  # __getattr__ delegation
        assert inner.backend == "plan"


# ---------------------------------------------------------------------------
# The soak, end to end (small, deterministic)
# ---------------------------------------------------------------------------


class TestChaosSoak:
    def test_thread_soak_holds_all_invariants(self):
        report = run_chaos_soak(mode="thread", workers=2, requests=60,
                                seed=3)
        assert report["ok"]
        assert report["lost"] == report["duplicated"] == report["stale"] == 0
        assert report["unresolved_after_close"] == 0
        assert report["final_alive_workers"] == 2
        assert report["answered"] > 0

    def test_soak_invariants_hold_across_reruns(self):
        # Batch *boundaries* vary with thread scheduling, so death
        # counts can differ run to run — but the invariants (and the
        # configuration echo) must hold on every rerun of a seed.
        a = run_chaos_soak(mode="thread", workers=2, requests=60, seed=3)
        b = run_chaos_soak(mode="thread", workers=2, requests=60, seed=3)
        for report in (a, b):
            assert report["ok"]
            assert report["lost"] == report["duplicated"] \
                == report["stale"] == 0
        for key in ("requests", "chaos", "script", "seed", "workers"):
            assert a[key] == b[key]

    def test_process_soak_holds_all_invariants(self):
        report = run_chaos_soak(mode="process", workers=2, requests=40,
                                seed=1)
        assert report["ok"]
        assert report["lost"] == report["duplicated"] == report["stale"] == 0
        assert report["final_alive_workers"] == 2

    def test_scripted_kill_forces_a_restart(self):
        report = run_chaos_soak(mode="thread", workers=2, requests=40,
                                seed=0, chaos=[], script=[("kill", 1, 2)])
        assert report["ok"]
        assert report["worker_deaths"] == 1
        assert report["worker_restarts"] == 1

    def test_request_size_must_divide_max_batch(self):
        with pytest.raises(ValueError, match="request_size"):
            run_chaos_soak(request_size=7, max_batch=64)

    def test_soak_failure_carries_the_report(self):
        # An impossible invariant setup: kill both workers' every batch
        # with a zero restart budget, so nothing can be answered.
        from repro.server import RestartPolicy  # noqa: F401 (doc anchor)
        with pytest.raises(SoakFailure) as info:
            run_chaos_soak(mode="thread", workers=1, requests=10, seed=0,
                           chaos=["worker_kill"], rate=1.0,
                           deadline_s=0.2)
        report = info.value.args[1]
        assert report["ok"] is False
        assert report["failures"]
