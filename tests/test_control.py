"""The managed FIB runtime under churn and fault injection.

The property at the heart of this file: for every updatable algorithm,
a seeded 1k-op churn stream — with every fault injector armed — runs
through :class:`ManagedFib` with **zero differential violations**, and
the event log's accounting identities hold (every batch applied,
rolled back, or rebuilt; every injected fault absorbed or recovered).
"""

import random

import pytest

from repro.algorithms import Resail
from repro.cli import ALGORITHM_FACTORIES
from repro.control import (
    ALL_FAULTS,
    ANNOUNCE,
    WITHDRAW,
    CapacityGuard,
    ChurnGenerator,
    ChurnProfile,
    EventLog,
    FaultPlan,
    Health,
    ManagedFib,
    RuntimePolicy,
    UpdateOp,
    make_failure_predicate,
    shrink_trace,
)
from repro.datasets import synthesize_as65000
from repro.prefix import Fib, Prefix, PrefixError


def _base():
    return synthesize_as65000(scale=0.001)


def _factories():
    out = []
    for name, factory in sorted(ALGORITHM_FACTORIES.items()):
        probe = factory(Fib(32))
        out.append((name, factory, probe.supports_updates,
                    probe.supports_delta))
    return out


UPDATABLE = [(n, f) for n, f, ok, _ in _factories() if ok]
#: No per-route update path at all (rebuild-per-batch discipline).
NO_UPDATE_PATH = [(n, f) for n, f, ok, _ in _factories() if not ok]
#: No per-route path, but a whole-batch delta path (DXR).
DELTA_REBUILDERS = [(n, f) for n, f, ok, d in _factories() if not ok and d]


# ---------------------------------------------------------------------------
# Churn generator
# ---------------------------------------------------------------------------


class TestChurnGenerator:
    def test_deterministic(self):
        base = _base()
        a = [op.render() for op in ChurnGenerator(base, seed=5).ops(300)]
        b = [op.render() for op in ChurnGenerator(base, seed=5).ops(300)]
        assert a == b
        c = [op.render() for op in ChurnGenerator(base, seed=6).ops(300)]
        assert a != c

    def test_ops_valid_by_construction(self):
        """Withdrawals always name live routes; replaying the stream on
        a FIB never raises."""
        base = _base()
        fib = Fib(32, list(base))
        for op in ChurnGenerator(base, seed=9).ops(500):
            prefix = op.resolve()
            if op.action == ANNOUNCE:
                fib.insert(prefix, op.next_hop)
            else:
                assert prefix in fib, op.render()
                fib.delete(prefix)

    def test_batches_cover_all_ops(self):
        gen = ChurnGenerator(_base(), seed=1)
        batches = list(gen.batches(103, 25))
        assert [len(b) for b in batches] == [25, 25, 25, 25, 3]

    def test_flap_storms_flap(self):
        profile = ChurnProfile(withdraw=0.0, modify=0.0, flap_storm=1.0,
                               correlated_withdraw=0.0)
        ops = list(ChurnGenerator(_base(), seed=2, profile=profile).ops(20))
        # Storms alternate announce/withdraw on one prefix.
        assert any(
            a.action == ANNOUNCE and b.action == WITHDRAW and a.prefix == b.prefix
            for a, b in zip(ops, ops[1:])
        )

    def test_length_mix_follows_bgp_histogram(self):
        lengths = [op.resolve().length
                   for op in ChurnGenerator(_base(), seed=3).ops(600)
                   if op.action == ANNOUNCE]
        # /24 dominates announcements, as in AS65000 (Figure 8).
        assert lengths.count(24) > len(lengths) * 0.4


# ---------------------------------------------------------------------------
# The core property: churn + faults => no divergence, books balance
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,factory", UPDATABLE,
                         ids=[n for n, _ in UPDATABLE])
def test_managed_churn_with_faults(name, factory):
    base = _base()
    managed = ManagedFib(
        factory, base,
        faults=FaultPlan.build(sorted(ALL_FAULTS), seed=23),
        # Update correctness is the property here; the chip-fit guard
        # (which SAIL-style layouts legitimately trip) has its own tests.
        policy=RuntimePolicy(guard_every=0),
        check_seed=23,
    )
    generator = ChurnGenerator(base, seed=23)
    outcomes = [managed.apply_batch(b) for b in generator.batches(1000, 50)]

    log = managed.log
    assert log.count("violation") == 0
    assert managed.health is not Health.FAILED
    log.check_accounting()  # batches and faults fully accounted
    assert log.batches_total == len(outcomes) == 20
    assert log.count("fault_injected") > 0, "fault plan never fired"
    # The committed structure answers exactly like the oracle.
    rng = random.Random(99)
    for _ in range(128):
        address = rng.getrandbits(32)
        assert managed.lookup(address) == managed.oracle.lookup(address)


@pytest.mark.parametrize("name,factory", NO_UPDATE_PATH,
                         ids=[n for n, _ in NO_UPDATE_PATH])
def test_unsupported_algorithms_ride_on_rebuilds(name, factory):
    """Algorithms with no per-route update path still take churn
    through the runtime: with delta application disabled, every batch
    becomes a planned rebuild, health stays HEALTHY (rebuilds are
    their discipline, not a failure)."""
    base = _base()
    managed = ManagedFib(factory, base, check_seed=4,
                         policy=RuntimePolicy(delta_updates=False))
    generator = ChurnGenerator(base, seed=4)
    for batch in generator.batches(200, 50):
        assert managed.apply_batch(batch) == "batch_rebuilt"
    log = managed.log
    log.check_accounting()
    assert log.count("rebuild_planned") == log.batches_total == 4
    assert log.count("violation") == 0


@pytest.mark.parametrize("name,factory", DELTA_REBUILDERS,
                         ids=[n for n, _ in DELTA_REBUILDERS])
def test_delta_capable_rebuilders_apply_in_place(name, factory):
    """A rebuild-discipline algorithm with a whole-batch delta path
    (DXR) lands most batches in place; batches it declines (too-broad
    short prefixes) fall back to planned rebuilds, never failures."""
    base = _base()
    managed = ManagedFib(factory, base, check_seed=4)
    generator = ChurnGenerator(base, seed=4)
    outcomes = [managed.apply_batch(b) for b in generator.batches(200, 50)]
    assert set(outcomes) <= {"batch_applied", "batch_rebuilt"}
    assert outcomes.count("batch_applied") > 0, "delta path never used"
    log = managed.log
    log.check_accounting()
    assert log.count("violation") == 0
    assert managed.health is Health.HEALTHY
    assert managed.health is Health.HEALTHY


def test_determinism_byte_identical_summaries():
    base = _base()

    def run():
        managed = ManagedFib(
            lambda f: Resail(f, hash_capacity=1 << 14), base,
            faults=FaultPlan.build(sorted(ALL_FAULTS), seed=7),
            check_seed=7,
        )
        for batch in ChurnGenerator(base, seed=7).batches(400, 25):
            managed.apply_batch(batch)
        return managed.log.summary()

    assert run() == run()


# ---------------------------------------------------------------------------
# Capacity guards
# ---------------------------------------------------------------------------


def test_tightened_guard_rolls_back_and_pins_degraded():
    """With the SRAM budget below the base load, every batch trips the
    hard guard and rolls back — and the runtime is never HEALTHY while
    the guard is tripped."""
    base = _base()
    managed = ManagedFib(
        lambda f: Resail(f, hash_capacity=1 << 14), base,
        guard=CapacityGuard(sram_pages=1),
    )
    generator = ChurnGenerator(base, seed=3)
    for batch in generator.batches(200, 20):
        assert managed.apply_batch(batch) == "batch_rolled_back"
        assert managed.health is not Health.HEALTHY
    managed.log.check_accounting()
    assert managed.log.count("guard_trip") == managed.log.batches_total
    # Nothing landed: the table is still exactly the base FIB.
    assert len(managed) == len(base)


def test_generous_guard_never_trips():
    base = _base()
    managed = ManagedFib(
        lambda f: Resail(f, hash_capacity=1 << 14), base,
        guard=CapacityGuard(),  # full Tofino-2 envelope
    )
    for batch in ChurnGenerator(base, seed=3).batches(200, 20):
        managed.apply_batch(batch)
    assert managed.log.count("guard_trip") == 0
    assert managed.health is Health.HEALTHY


# ---------------------------------------------------------------------------
# Failure path: a buggy algorithm is caught, FAILED, and shrunk
# ---------------------------------------------------------------------------


class _BuggyResail(Resail):
    """Silently drops /24 withdrawals — the differential checker's prey."""

    def delete(self, prefix):
        if prefix.length == 24:
            return
        super().delete(prefix)


def test_buggy_algorithm_fails_with_minimal_repro():
    base = _base()
    managed = ManagedFib(
        lambda f: _BuggyResail(f, hash_capacity=1 << 14), base,
        policy=RuntimePolicy(rebuild_budget=1, max_shrink_evals=200),
        check_seed=11,
    )
    for batch in ChurnGenerator(base, seed=11).batches(500, 25):
        managed.apply_batch(batch)
        if managed.health is Health.FAILED:
            break
    assert managed.health is Health.FAILED
    assert managed.log.count("violation") > 0
    managed.log.check_accounting()
    # The shrunk repro is small and still reproduces the bug.
    repro = managed.minimal_repro
    assert repro is not None and 1 <= len(repro) <= 5
    fails = make_failure_predicate(
        lambda f: _BuggyResail(f, hash_capacity=1 << 14), base
    )
    assert fails(repro)
    # FAILED is terminal: further batches are refused (rolled back).
    assert managed.apply_batch([]) == "batch_rolled_back"


def test_shrinker_minimizes_synthetic_trace():
    ops = [
        UpdateOp(ANNOUNCE, Prefix.from_bits(i, 16, 32), i % 7)
        for i in range(40)
    ]
    poison = UpdateOp(WITHDRAW, Prefix.from_bits(9999, 16, 32))
    trace = ops[:20] + [poison] + ops[20:]
    shrunk = shrink_trace(trace, lambda t: poison in t)
    assert shrunk == [poison]
    with pytest.raises(ValueError):
        shrink_trace(ops, lambda t: False)


# ---------------------------------------------------------------------------
# Fault absorption specifics
# ---------------------------------------------------------------------------


def test_malformed_and_ghost_ops_absorbed_without_corruption():
    base = _base()
    managed = ManagedFib(lambda f: Resail(f, hash_capacity=1 << 14), base)
    hostile = [
        UpdateOp(ANNOUNCE, None, 5, raw=(1 << 40, 32, 32), fault="malformed_prefix"),
        UpdateOp(ANNOUNCE, None, 5, raw=(0, -3, 32), fault="malformed_prefix"),
        UpdateOp(WITHDRAW, Prefix.from_bits(0x7FFFFFFF, 31, 32),
                 fault="ghost_withdraw"),
        UpdateOp(ANNOUNCE, Prefix.from_bits(0x0A01, 16, 32), -4,
                 fault="malformed_prefix"),
    ]
    assert managed.apply_batch(hostile) == "batch_applied"
    log = managed.log
    assert log.count("op_absorbed") == 4
    assert log.count("fault_absorbed") == 4
    log.check_accounting()
    assert len(managed) == len(base)
    assert managed.health is Health.HEALTHY


def test_transient_fault_retries_then_succeeds():
    base = _base()
    plan = FaultPlan.build(["mid_update_exception"], seed=1, rate=1.0)
    managed = ManagedFib(lambda f: Resail(f, hash_capacity=1 << 14), base,
                         faults=plan)
    gen = ChurnGenerator(base, seed=1)
    for batch in gen.batches(100, 20):
        managed.apply_batch(batch)
    log = managed.log
    log.check_accounting()
    # Every batch armed the fault, rolled back once, retried, and landed.
    assert log.count("retry") == log.batches_total
    assert log.count("batch_applied") == log.batches_total
    assert log.count("rebuild_recovery") == 0
    assert managed.simulated_backoff_s > 0


def test_persistent_fault_forces_recovery_rebuild():
    base = _base()
    plan = FaultPlan.build(["bucket_overflow"], seed=1, rate=1.0)
    managed = ManagedFib(lambda f: Resail(f, hash_capacity=1 << 14), base,
                         faults=plan)
    gen = ChurnGenerator(base, seed=1)
    for batch in gen.batches(100, 20):
        managed.apply_batch(batch)
    log = managed.log
    log.check_accounting()
    assert log.count("rebuild_recovery") == log.count("fault_injected") > 0
    assert log.count("violation") == 0


def test_rebuild_budget_exhaustion_goes_failed():
    base = _base()
    plan = FaultPlan.build(["bucket_overflow"], seed=1, rate=1.0)
    managed = ManagedFib(
        lambda f: Resail(f, hash_capacity=1 << 14), base,
        faults=plan,
        policy=RuntimePolicy(rebuild_budget=2, shrink_on_failure=False),
    )
    gen = ChurnGenerator(base, seed=1)
    for batch in gen.batches(200, 20):
        managed.apply_batch(batch)
    assert managed.health is Health.FAILED
    managed.log.check_accounting()


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_accounting_raises_on_imbalance(self):
        log = EventLog()
        log.record("batch", 0, size=3)
        with pytest.raises(AssertionError):
            log.check_accounting()
        log.record("batch_applied", 0)
        log.check_accounting()
        log.record("fault_injected", 0, fault="x")
        with pytest.raises(AssertionError):
            log.check_accounting()
        log.record("fault_absorbed", 0, fault="x")
        log.check_accounting()

    def test_summary_mentions_everything(self):
        log = EventLog()
        log.record("batch", 0, size=1)
        log.record("batch_rebuilt", 0)
        log.record("health", 0, old="healthy", new="degraded")
        text = log.summary()
        assert "rebuilt 1" in text
        assert "healthy->degraded@0" in text

    def test_update_op_resolve_raises_prefix_error(self):
        op = UpdateOp(ANNOUNCE, None, 1, raw=(0, 40, 32))
        with pytest.raises(PrefixError):
            op.resolve()
