"""Unit tests for BSIC."""

import pytest

from repro.algorithms import Bsic
from repro.algorithms.bsic import BstForest, bsic_layout_from_counts
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.prefix import Fib, RangeEntry, expand_to_ranges, from_bitstring, parse_prefix, ranges_to_bst

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


class TestBstForest:
    def make_tree(self, n=7):
        table = [RangeEntry(i * 2, i % 3) for i in range(n)]
        return ranges_to_bst(table), table

    def test_add_and_search(self):
        forest = BstForest(endpoint_bits=8)
        bst, table = self.make_tree()
        root = forest.add_tree(bst)
        for key in range(14):
            assert forest.search(root, key) == bst.search(key)

    def test_multiple_trees_independent(self):
        forest = BstForest(endpoint_bits=8)
        bst1, _ = self.make_tree(7)
        table2 = [RangeEntry(i * 3, 9) for i in range(5)]
        bst2 = ranges_to_bst(table2)
        r1 = forest.add_tree(bst1)
        r2 = forest.add_tree(bst2)
        assert forest.search(r2, 4) == 9
        assert forest.search(r1, 4) == bst1.search(4)

    def test_level_sizes(self):
        forest = BstForest(endpoint_bits=8)
        forest.add_tree(self.make_tree(7)[0])
        assert forest.level_sizes() == [1, 2, 4]
        assert forest.total_nodes() == 7
        assert forest.depth == 3

    def test_node_entry_bits(self):
        # §4.2's four fields: endpoint + hop + two 24-bit pointers.
        assert BstForest(40).node_entry_bits == 40 + 8 + 48


class TestPaperTable3:
    """§4.2's worked example: the initial table for Table 1 with k=4."""

    def test_initial_table_contents(self, example_fib):
        bsic = Bsic(example_fib, k=4)
        entries = {(e.value, e.mask): e.data for e in bsic.initial.entries()}
        # 011* -> next hop B (=1): a short prefix padded with wildcards.
        assert entries[(0b0110, 0b1110)] == ("hop", 1)
        # 0101, 1001, 1010 -> pointers to BSTs.
        assert entries[(0b0101, 0b1111)][0] == "bst"
        assert entries[(0b1001, 0b1111)][0] == "bst"
        assert entries[(0b1010, 0b1111)][0] == "bst"
        assert len(entries) == 4

    def test_bst2_has_five_ranges_plus_completion(self, example_fib):
        # Paper Table 13: slice 1001 expands to 7 intervals.
        bsic = Bsic(example_fib, k=4)
        root = dict(
            (e.value, e.data) for e in bsic.initial.entries()
        )[0b1001][1]
        sizes = []
        index, level = root, 0
        # Count nodes reachable from this root.
        frontier = [(0, root)]
        count = 0
        while frontier:
            level, idx = frontier.pop()
            _e, _h, left, right = bsic.forest.node(level, idx)
            count += 1
            if left is not None:
                frontier.append((level + 1, left))
            if right is not None:
                frontier.append((level + 1, right))
        assert count == 7


class TestLookup:
    def test_exhaustive_on_example(self, example_fib):
        bsic = Bsic(example_fib, k=4)
        for addr in range(256):
            assert bsic.lookup(addr) == example_fib.lookup(addr), addr

    def test_matches_oracle_ipv4(self, ipv4_fib, ipv4_addresses):
        bsic = Bsic(ipv4_fib, k=16)
        for addr in ipv4_addresses:
            assert bsic.lookup(addr) == ipv4_fib.lookup(addr)

    def test_matches_oracle_ipv6(self, ipv6_fib, ipv6_addresses):
        bsic = Bsic(ipv6_fib)  # default k=24 for IPv6
        assert bsic.k == 24
        for addr in ipv6_addresses:
            assert bsic.lookup(addr) == ipv6_fib.lookup(addr)

    def test_misdirected_address_inherits_slice_default(self):
        # An address whose slice points to a BST but matches none of the
        # BST's prefixes must land on the slice's own LPM (App. A.4).
        fib = Fib(32)
        fib.insert(P("10.0.0.0/8"), 1)
        fib.insert(P("10.1.2.0/24"), 3)
        bsic = Bsic(fib, k=16)
        assert bsic.lookup(A("10.1.9.9")) == 1

    def test_invalid_k(self, ipv4_fib):
        with pytest.raises(ValueError):
            Bsic(ipv4_fib, k=0)
        with pytest.raises(ValueError):
            Bsic(ipv4_fib, k=32)


class TestUpdates:
    def test_insert_long_rebuilds_bst(self, example_fib):
        bsic = Bsic(example_fib, k=4)
        bsic.insert(from_bitstring("10011111", 8), 3)
        assert bsic.lookup(0b10011111) == 3
        assert bsic.lookup(0b10010000) == 2  # unchanged neighbours

    def test_insert_short_updates_defaults(self, example_fib):
        bsic = Bsic(example_fib, k=4)
        bsic.insert(from_bitstring("10", 8), 9)
        # 1000**** has no specific match; now inherits the new /2.
        assert bsic.lookup(0b10001111) == 9
        assert bsic.lookup(0b10010000) == 2  # more specific still wins

    def test_delete(self, example_fib):
        bsic = Bsic(example_fib, k=4)
        bsic.delete(from_bitstring("10011010", 8))
        assert bsic.lookup(0b10011010) is None
        with pytest.raises(KeyError):
            bsic.delete(from_bitstring("10011010", 8))

    def test_update_storm_stays_correct(self, example_fib):
        import random

        rng = random.Random(5)
        fib = Fib(8)
        bsic = Bsic(fib, k=4)
        live = {}
        for _ in range(60):
            bits = rng.randrange(256)
            length = rng.randrange(1, 9)
            prefix = from_bitstring(format(bits, "08b")[:length], 8)
            if prefix in live and rng.random() < 0.5:
                bsic.delete(prefix)
                fib.delete(prefix)
                del live[prefix]
            else:
                hop = rng.randrange(16)
                bsic.insert(prefix, hop)
                fib.insert(prefix, hop)
                live[prefix] = hop
            for addr in range(0, 256, 7):
                assert bsic.lookup(addr) == fib.lookup(addr)


class TestModel:
    def test_steps_is_one_plus_depth(self, ipv6_fib):
        bsic = Bsic(ipv6_fib)
        assert bsic.cram_metrics().steps == 1 + bsic.forest.depth

    def test_cram_program_equivalence(self, example_fib):
        bsic = Bsic(example_fib, k=4)
        for addr in range(0, 256, 3):
            assert bsic.cram_lookup(addr) == bsic.lookup(addr)

    def test_layout_tofino_doubles_bst_stages(self, ipv6_fib):
        bsic = Bsic(ipv6_fib)
        ideal = map_to_ideal_rmt(bsic.layout())
        tofino = map_to_tofino2(bsic.layout())
        # §6.5.3: each BST level needs two Tofino-2 stages.
        assert tofino.stages >= 2 * bsic.forest.depth
        assert ideal.stages == 1 + bsic.forest.depth

    def test_layout_scaling_is_linear_in_universes(self, ipv6_fib):
        bsic = Bsic(ipv6_fib)
        base = bsic.layout()
        doubled = base.scaled(2.0)
        assert doubled.total_entries() == 2 * base.total_entries()

    def test_initial_tcam_compression(self, ipv6_fib):
        # The initial TCAM must hold far fewer entries than prefixes.
        bsic = Bsic(ipv6_fib)
        assert len(bsic.initial) < len(ipv6_fib) / 4
