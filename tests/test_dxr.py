"""Unit tests for the DXR baseline."""

import pytest

from repro.algorithms import Dxr
from repro.chip import map_to_ideal_rmt
from repro.prefix import Fib, parse_prefix

P = parse_prefix
A = lambda s: int.from_bytes(bytes(map(int, s.split("."))), "big")


class TestLookup:
    def test_exhaustive_on_example(self, example_fib):
        dxr = Dxr(example_fib, k=4)
        for addr in range(256):
            assert dxr.lookup(addr) == example_fib.lookup(addr), addr

    def test_matches_oracle(self, ipv4_fib, ipv4_addresses):
        dxr = Dxr(ipv4_fib, k=16)
        for addr in ipv4_addresses:
            assert dxr.lookup(addr) == ipv4_fib.lookup(addr)

    def test_direct_hop_slices(self):
        fib = Fib(32)
        fib.insert(P("10.0.0.0/8"), 1)
        dxr = Dxr(fib, k=16)
        assert dxr.lookup(A("10.200.0.1")) == 1
        assert dxr.lookup(A("11.0.0.1")) is None

    def test_invalid_k(self, ipv4_fib):
        with pytest.raises(ValueError):
            Dxr(ipv4_fib, k=0)


class TestStructure:
    def test_sections_are_contiguous_and_sorted(self, example_fib):
        dxr = Dxr(example_fib, k=4)
        for entry in dxr.initial:
            if entry and entry[0] == "section":
                _tag, start, count = entry
                lefts = [r.left for r in dxr.ranges[start:start + count]]
                assert lefts == sorted(lefts)

    def test_search_depth_covers_largest_section(self, ipv4_fib):
        dxr = Dxr(ipv4_fib, k=16)
        assert (1 << dxr.search_depth) > dxr.max_section

    def test_single_table_footprint_smaller_than_fanout(self, ipv4_fib):
        """One range table vs one copy per search level (§4.1's point)."""
        dxr = Dxr(ipv4_fib, k=16)
        range_bits = len(dxr.ranges) * (dxr.suffix_bits + 8)
        duplicated = sum(
            t.entries * t.sram_entry_bits
            for phase in dxr.layout().phases[1:]
            for t in phase.tables
        )
        assert dxr.search_depth >= 3
        assert duplicated == dxr.search_depth * range_bits


class TestModel:
    def test_cram_program_equivalence(self, example_fib):
        dxr = Dxr(example_fib, k=4)
        for addr in range(0, 256, 3):
            assert dxr.cram_lookup(addr) == dxr.lookup(addr)

    def test_cram_counts_range_table_once(self, example_fib):
        dxr = Dxr(example_fib, k=4)
        metrics = dxr.cram_metrics()
        # Initial table (2^4 x 32b) + ONE range table copy.
        expected_ranges = len(dxr.ranges) * (4 + 8)
        assert metrics.sram_bits == 16 * 32 + expected_ranges

    def test_layout_duplicates_per_level(self, example_fib):
        dxr = Dxr(example_fib, k=4)
        layout = dxr.layout()
        assert len(layout.phases) == 1 + dxr.search_depth
        copies = [t for p in layout.phases[1:] for t in p.tables]
        assert all(t.entries == len(dxr.ranges) for t in copies)
