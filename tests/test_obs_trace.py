"""Tracing tests: transparency, export formats, schema validation.

The tentpole guarantee: a traced run of any algorithm's CRAM program
produces the identical result as an untraced run.  These tests reuse
the equivalence matrix from ``test_integration`` so every algorithm's
program is exercised both ways.
"""

import json

import pytest
from test_integration import IPV4_MAKERS, IPV6_MAKERS

from repro.core.interpreter import run
from repro.obs import (
    NULL_TRACER,
    RecordingTracer,
    TraceEvent,
    Tracer,
    validate_chrome_trace,
)


@pytest.mark.parametrize("name,maker", IPV4_MAKERS,
                         ids=[n for n, _ in IPV4_MAKERS])
class TestTracedParityIPv4:
    def test_traced_matches_untraced(self, name, maker, ipv4_fib,
                                     ipv4_addresses):
        algo = maker(ipv4_fib)
        tracer = RecordingTracer()
        for addr in ipv4_addresses[:40]:
            traced = algo.cram_lookup(addr, tracer=tracer)
            untraced = algo.cram_lookup(addr)
            assert traced == untraced == algo.lookup(addr), addr
        assert tracer.events, "tracer should have observed the runs"

    def test_final_state_identical(self, name, maker, ipv4_fib,
                                   ipv4_addresses):
        algo = maker(ipv4_fib)
        program = algo.cram_program()
        for addr in ipv4_addresses[:10]:
            init = {"addr": addr, **algo.cram_initial_state()}
            assert (run(program, dict(init), RecordingTracer())
                    == run(program, dict(init)))


@pytest.mark.parametrize("name,maker", IPV6_MAKERS,
                         ids=[n for n, _ in IPV6_MAKERS])
class TestTracedParityIPv6:
    def test_traced_matches_untraced(self, name, maker, ipv6_fib,
                                     ipv6_addresses):
        algo = maker(ipv6_fib)
        tracer = RecordingTracer()
        for addr in ipv6_addresses[:25]:
            assert algo.cram_lookup(addr, tracer=tracer) == \
                algo.cram_lookup(addr), addr


class TestRecordingTracer:
    @pytest.fixture()
    def traced(self, ipv4_fib, ipv4_addresses):
        from repro.algorithms import Resail

        algo = Resail(ipv4_fib, min_bmp=13)
        tracer = RecordingTracer()
        for addr in ipv4_addresses[:5]:
            algo.cram_lookup(addr, tracer=tracer)
        return tracer

    def test_event_stream_structure(self, traced):
        kinds = [e.kind for e in traced.events]
        assert kinds.count("run_begin") == 5
        assert kinds.count("run_end") == 5
        assert "wave" in kinds and "step" in kinds and "write" in kinds
        # Each lookup's events are contiguous and indexed.
        assert {e.lookup for e in traced.events} == set(range(5))

    def test_table_accesses_recorded(self, traced):
        tables = [e for e in traced.events if e.kind == "table"]
        assert tables, "RESAIL programs hit tables on every lookup"
        for event in tables:
            assert event.data["table"]
            assert event.data["match_kind"] in ("exact", "ternary")

    def test_ticks_monotonic_per_stream(self, traced):
        ticks = [e.tick for e in traced.events]
        assert ticks == sorted(ticks)

    def test_jsonl_parses_line_per_event(self, traced):
        lines = traced.to_jsonl().splitlines()
        assert len(lines) == len(traced.events)
        for line, event in zip(lines, traced.events):
            doc = json.loads(line)
            assert doc["kind"] == event.kind
            assert doc["lookup"] == event.lookup

    def test_chrome_trace_validates(self, traced):
        events = traced.to_chrome_trace()
        validate_chrome_trace(events)
        # Round-trip through JSON, as Perfetto would read it.
        validate_chrome_trace(json.loads(json.dumps(events)))
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 5
        assert {e["pid"] for e in begins} == set(range(5))

    def test_write_files(self, traced, tmp_path):
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        traced.write_chrome_trace(chrome)
        traced.write_jsonl(jsonl)
        validate_chrome_trace(json.loads(chrome.read_text()))
        assert len(jsonl.read_text().splitlines()) == len(traced.events)

    def test_determinism(self, ipv4_fib, ipv4_addresses):
        from repro.algorithms import Resail

        def one():
            algo = Resail(ipv4_fib, min_bmp=13)
            tracer = RecordingTracer()
            for addr in ipv4_addresses[:5]:
                algo.cram_lookup(addr, tracer=tracer)
            return tracer.to_jsonl()

        assert one() == one()


class TestNullTracer:
    def test_base_tracer_hooks_are_noops(self, example_fib):
        from repro.algorithms import LogicalTcam

        algo = LogicalTcam(example_fib)
        # NULL_TRACER must be accepted anywhere a tracer is.
        for addr in (0, 1, 129, 255):
            assert algo.cram_lookup(addr, tracer=NULL_TRACER) == \
                algo.cram_lookup(addr)

    def test_tracer_base_class_records_nothing(self):
        tracer = Tracer()
        assert tracer.on_run_begin(None, {}) is None
        assert tracer.on_run_end({}) is None


class TestChromeTraceValidator:
    def test_rejects_non_array(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"not": "a list"})

    def test_rejects_non_object_event(self):
        with pytest.raises(ValueError):
            validate_chrome_trace(["nope"])

    def test_rejects_missing_field(self):
        with pytest.raises(ValueError, match="missing 'ts'"):
            validate_chrome_trace([{"name": "x", "ph": "B",
                                    "pid": 0, "tid": 0}])

    def test_rejects_bad_type(self):
        with pytest.raises(ValueError, match="'ts' has type"):
            validate_chrome_trace([{"name": "x", "ph": "B", "ts": "0",
                                    "pid": 0, "tid": 0}])

    def test_accepts_minimal_event(self):
        validate_chrome_trace([{"name": "x", "ph": "i", "ts": 0,
                                "pid": 0, "tid": 0}])


class TestTraceEvent:
    def test_to_dict_omits_empty_fields(self):
        doc = TraceEvent("run_end", 3, 0).to_dict()
        assert doc == {"kind": "run_end", "tick": 3, "lookup": 0}

    def test_to_dict_coerces_exotic_values(self):
        doc = TraceEvent("table", 0, 0, step="s",
                         data={"key": (1, 2), "obj": object()}).to_dict()
        assert doc["data"]["key"] == [1, 2]
        assert isinstance(doc["data"]["obj"], str)
