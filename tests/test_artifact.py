"""The persistent artifact store: round-trip, corruption, golden format.

Three proof obligations for :mod:`repro.artifact`:

* **Round trip** (hypothesis): for random FIBs across SAIL / RESAIL /
  DXR and widths, ``save -> load -> lookup_batch`` is bit-exact
  against a freshly built plan — scalar and vector backends, before
  *and after* churn applied on top of the loaded structure (a warm
  start must keep updating correctly, not just answering).
* **Corruption battery**: every tampered artifact — truncations,
  flipped bytes in each section, wrong magic, stale format version,
  content-digest mismatch against the serving FIB — fails with a
  typed :class:`~repro.artifact.ArtifactError`.  A corrupt snapshot
  may never produce a wrong answer; the seeded fuzz test closes the
  gap between the hand-picked cases by flipping random bits and
  asserting loads either succeed bit-identically (flips in unchecked
  padding) or raise typed.
* **Golden format**: saving a pinned tiny FIB reproduces
  ``tests/golden/artifact_fixture.rap`` byte for byte, and the
  committed fixture still loads — the on-disk format cannot drift
  silently.  Regenerate intentionally with ``--regen-golden``.
"""

import os
import struct
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import Dxr, Resail, Sail
from repro.algorithms.base import UpdateUnsupported
from repro.artifact import (
    ArtifactCatalog,
    ArtifactCorruptError,
    ArtifactDigestMismatch,
    ArtifactError,
    ArtifactFormatError,
    ArtifactNotFound,
    ArtifactTruncatedError,
    ArtifactVersionError,
)
from repro.artifact.format import MAGIC, _align, _PREFIX
from repro.datasets import small_example_fib
from repro.prefix.prefix import Prefix
from repro.prefix.trie import Fib

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FIXTURE = GOLDEN_DIR / "artifact_fixture.rap"

#: (label, width, factory) — the three state-exporting schemes; DXR
#: additionally at a narrow width (SAIL/RESAIL are IPv4-bound).
CONFIGS = [
    ("sail", 32, lambda fib: Sail(fib)),
    ("resail", 32, lambda fib: Resail(fib)),
    ("dxr", 32, lambda fib: Dxr(fib, k=16)),
    ("dxr-w16", 16, lambda fib: Dxr(fib, k=8)),
]


def _fib_from(width, triples):
    fib = Fib(width)
    for bits, length, hop in triples:
        fib.insert(Prefix.from_bits(bits % (1 << length) if length else 0,
                                    length, width), hop)
    return fib


def _probes(fib):
    out = []
    for prefix, _hop in fib:
        base = prefix.value
        out.append(base)
        out.append(base | ((1 << (fib.width - prefix.length)) - 1))
    out.extend(x * 2654435761 % (1 << fib.width) for x in range(32))
    return out


@st.composite
def fib_triples(draw, width):
    n = draw(st.integers(min_value=1, max_value=24))
    triples = []
    for _ in range(n):
        length = draw(st.integers(min_value=1, max_value=width))
        bits = draw(st.integers(min_value=0,
                                max_value=(1 << length) - 1))
        hop = draw(st.integers(min_value=0, max_value=200))
        triples.append((bits, length, hop))
    return triples


@pytest.mark.parametrize("label,width,factory", CONFIGS,
                         ids=[c[0] for c in CONFIGS])
@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_round_trip_bit_exact(tmp_path_factory, label, width, factory,
                              data):
    triples = data.draw(fib_triples(width), label="fib")
    fib = _fib_from(width, triples)
    algo = factory(fib)
    plan = algo.compile_plan()
    vplan = algo.compile_vector_plan(plan)

    root = tmp_path_factory.mktemp("catalog")
    catalog = ArtifactCatalog(str(root))
    catalog.save(label, algo, fib, vector_plan=vplan)
    loaded = catalog.load(label, factory=factory)
    warm = loaded.algorithm()
    warm_plan = warm.compile_plan()
    warm_vplan = warm.compile_vector_plan(warm_plan)

    probes = _probes(fib)
    assert list(warm_plan.lookup_batch(probes)) == \
        list(plan.lookup_batch(probes))
    assert warm_vplan.lookup_batch(probes).tolist() == \
        vplan.lookup_batch(probes).tolist()

    # Churn on top of the loaded base: the warm structure must keep
    # absorbing updates exactly like the cold one.  DXR has no
    # in-place insert (the managed runtime rebuilds it), so churn
    # there goes through a rebuild from the updated FIB instead.
    churn = data.draw(fib_triples(width), label="churn")
    for bits, length, hop in churn:
        prefix = Prefix.from_bits(bits % (1 << length) if length else 0,
                                  length, width)
        fib.insert(prefix, hop)
        try:
            algo.insert(prefix, hop)
            warm.insert(prefix, hop)
        except UpdateUnsupported:
            algo = factory(fib)
            warm = factory(fib)
    probes = _probes(fib)
    want = [fib.lookup(a) for a in probes]
    assert list(warm.compile_plan().lookup_batch(probes)) == want
    assert warm.compile_vector_plan().lookup_batch_hops(probes) == want
    assert list(algo.compile_plan().lookup_batch(probes)) == want


# ---------------------------------------------------------------------------
# Corruption battery
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def saved_artifact(tmp_path_factory):
    """One RESAIL artifact plus its parsed layout and baseline answers."""
    root = tmp_path_factory.mktemp("corruption-catalog")
    fib = Fib(32)
    rows = [(0x0A, 8, 1), (0x0A01, 16, 2), (0x0A0102, 24, 3),
            (0xC0A80101, 32, 4), (0x3F, 6, 5), (0x2, 3, 6)]
    for bits, length, hop in rows:
        fib.insert(Prefix.from_bits(bits, length, 32), hop)
    algo = Resail(fib)
    catalog = ArtifactCatalog(str(root))
    catalog.save("battery", algo, fib,
                 vector_plan=algo.compile_vector_plan())
    path = catalog.path("battery", "v001")
    probes = _probes(fib)
    baseline = [fib.lookup(a) for a in probes]
    return {
        "catalog": catalog,
        "path": path,
        "data": Path(path).read_bytes(),
        "fib": fib,
        "probes": probes,
        "baseline": baseline,
    }


def _load_bytes(tmp_path, blob, expect_fib=None):
    target = tmp_path / "snapshot.rap"
    target.write_bytes(blob)
    loaded = ArtifactCatalog.load_path(str(target), expect_fib=expect_fib)
    # Force every deferred verification: FIB digest, state import,
    # fingerprint check, view adoption.
    loaded.fib()
    return loaded


def _layout(blob):
    """Parse (header_len, data_start, sections) out of a snapshot."""
    import json
    magic, version, hlen = _PREFIX.unpack_from(blob, 0)
    header = json.loads(blob[_PREFIX.size:_PREFIX.size + hlen])
    data_start = _align(_PREFIX.size + hlen + 32)
    return hlen, data_start, header["sections"]


def test_truncations_raise_typed(saved_artifact, tmp_path):
    blob = saved_artifact["data"]
    hlen, data_start, sections = _layout(blob)
    last_end = data_start + max(e["offset"] + e["length"] for e in sections)
    cuts = [0, 7, 15, _PREFIX.size + hlen // 2,  # inside prefix/header
            data_start + 100,                    # inside the first blobs
            last_end - 1]                        # chops the last section
    for cut in cuts:
        with pytest.raises(ArtifactError) as err:
            _load_bytes(tmp_path, blob[:cut]).algorithm()
        assert isinstance(
            err.value, (ArtifactTruncatedError, ArtifactFormatError,
                        ArtifactCorruptError)), cut


def test_wrong_magic_raises_format_error(saved_artifact, tmp_path):
    blob = bytearray(saved_artifact["data"])
    blob[:len(MAGIC)] = b"NOTREPRO"
    with pytest.raises(ArtifactFormatError):
        _load_bytes(tmp_path, bytes(blob))


def test_stale_format_version_raises(saved_artifact, tmp_path):
    blob = bytearray(saved_artifact["data"])
    # The little-endian u32 after the magic is the format version.
    struct.pack_into("<I", blob, len(MAGIC), 999)
    with pytest.raises(ArtifactVersionError):
        _load_bytes(tmp_path, bytes(blob))


def test_header_flip_raises_corrupt(saved_artifact, tmp_path):
    blob = bytearray(saved_artifact["data"])
    blob[_PREFIX.size + 5] ^= 0x40
    with pytest.raises((ArtifactCorruptError, ArtifactFormatError)):
        _load_bytes(tmp_path, bytes(blob))


def test_every_section_flip_raises_corrupt(saved_artifact, tmp_path):
    blob = saved_artifact["data"]
    _hlen, data_start, sections = _layout(blob)
    assert sections, "battery artifact has no sections?"
    for entry in sections:
        if not entry["length"]:
            continue
        tampered = bytearray(blob)
        offset = data_start + entry["offset"] + entry["length"] // 2
        tampered[offset] ^= 0x01
        with pytest.raises(ArtifactCorruptError):
            loaded = _load_bytes(tmp_path, bytes(tampered))
            loaded.algorithm()


def test_digest_mismatch_against_serving_fib(saved_artifact, tmp_path):
    other = Fib(32)
    other.insert(Prefix.from_bits(0x0B, 8, 32), 9)
    with pytest.raises(ArtifactDigestMismatch):
        _load_bytes(tmp_path, saved_artifact["data"], expect_fib=other)
    # Same content but different width is a digest mismatch too.
    narrow = Fib(16)
    with pytest.raises(ArtifactDigestMismatch):
        _load_bytes(tmp_path, saved_artifact["data"], expect_fib=narrow)


def test_missing_artifact_raises_not_found(saved_artifact):
    catalog = saved_artifact["catalog"]
    with pytest.raises(ArtifactNotFound):
        catalog.load("no-such-name")
    with pytest.raises(ArtifactNotFound):
        catalog.load("battery", "v999")


def test_fuzz_bit_flips_fail_typed_or_load_identically(saved_artifact,
                                                       tmp_path):
    """Seeded fuzz: random single/multi bit flips anywhere in the file.

    Every flip either lands in unchecked padding — then the load must
    succeed and answer bit-identically — or it is caught by a checksum
    and raises a typed ArtifactError.  No third outcome: a fuzzed
    artifact never loads *and* answers differently, and never escapes
    with an untyped exception.
    """
    import random

    blob = saved_artifact["data"]
    probes = saved_artifact["probes"]
    baseline = saved_artifact["baseline"]

    # Byte positions the checksums do NOT cover: alignment padding
    # between the header and the data, and between/after sections.
    hlen, data_start, sections = _layout(blob)
    checked = set(range(_PREFIX.size + hlen + 32))
    for entry in sections:
        start = data_start + entry["offset"]
        checked.update(range(start, start + entry["length"]))
    padding = sorted(set(range(len(blob))) - checked)
    assert padding, "format has no alignment padding at all?"

    def _attempt(tampered):
        loaded = _load_bytes(tmp_path, bytes(tampered),
                             expect_fib=saved_artifact["fib"])
        algo = loaded.algorithm()
        assert list(algo.compile_plan().lookup_batch(probes)) == baseline
        assert algo.compile_vector_plan().lookup_batch_hops(probes) == \
            baseline

    failed = 0
    for seed in range(40):
        rng = random.Random(seed)
        tampered = bytearray(blob)
        for _ in range(rng.randint(1, 3)):
            tampered[rng.randrange(len(tampered))] ^= 1 << rng.randrange(8)
        try:
            _attempt(tampered)
        except ArtifactError:
            failed += 1
    assert failed, "no fuzzed flip was ever caught by a checksum"

    # Flips in the unchecked padding must load AND answer identically:
    # nothing in the reader may depend on padding bytes.
    for seed in range(10):
        rng = random.Random(1000 + seed)
        tampered = bytearray(blob)
        tampered[rng.choice(padding)] ^= 1 << rng.randrange(8)
        _attempt(tampered)


# ---------------------------------------------------------------------------
# Golden on-disk format
# ---------------------------------------------------------------------------


def _golden_save(tmp_path):
    fib = small_example_fib()
    algo = Dxr(fib, k=4)
    catalog = ArtifactCatalog(str(tmp_path / "golden-catalog"))
    catalog.save("fixture", algo, fib, version="v001",
                 vector_plan=algo.compile_vector_plan())
    return Path(catalog.path("fixture", "v001")).read_bytes(), fib


def test_golden_artifact_bytes_stable(tmp_path, regen_golden):
    blob, _fib = _golden_save(tmp_path)
    if regen_golden:
        GOLDEN_FIXTURE.write_bytes(blob)
        pytest.skip("regenerated tests/golden/artifact_fixture.rap")
    assert GOLDEN_FIXTURE.exists(), \
        "golden fixture missing; run with --regen-golden and commit it"
    golden = GOLDEN_FIXTURE.read_bytes()
    assert blob == golden, (
        "artifact byte layout drifted from tests/golden/"
        "artifact_fixture.rap — if intentional, regenerate with "
        "--regen-golden and commit the new fixture")


def test_golden_artifact_still_loads(tmp_path):
    if not GOLDEN_FIXTURE.exists():
        pytest.skip("golden fixture not generated yet")
    fib = small_example_fib()
    loaded = ArtifactCatalog.load_path(str(GOLDEN_FIXTURE), expect_fib=fib)
    algo = loaded.algorithm()
    probes = list(range(1 << fib.width))
    assert list(algo.compile_plan().lookup_batch(probes)) == \
        [fib.lookup(a) for a in probes]


# ---------------------------------------------------------------------------
# Catalog semantics
# ---------------------------------------------------------------------------


def test_catalog_versions_and_current(tmp_path):
    fib = small_example_fib()
    algo = Dxr(fib, k=4)
    catalog = ArtifactCatalog(str(tmp_path))
    v1 = catalog.save("table", algo, fib)
    v2 = catalog.save("table", algo, fib)
    assert (v1, v2) == ("v001", "v002")
    assert catalog.versions("table") == ["v001", "v002"]
    assert catalog.current("table") == "v002"
    catalog.set_current("table", "v001")
    assert catalog.load("table").version == "v001"
    with pytest.raises(ArtifactError):
        catalog.save("table", algo, fib, version="v001")  # immutable
    report = catalog.verify("table", "v002")
    assert report["sections"] >= 3


def test_deep_verify_battery(saved_artifact):
    report = saved_artifact["catalog"].verify("battery", deep=True)
    assert report["probes"] > 0
    assert report["algorithm"] == "resail"
