"""Unit tests for the serving frontend (:mod:`repro.server`).

The coalescer is driven with a :class:`repro.obs.FakeClock`, so every
deadline-trigger assertion is deterministic — no test here sleeps on
the wall clock to make a timer fire.
"""

import random
import threading

import pytest

from repro.algorithms.hibst import HiBst
from repro.control import ManagedFib, UpdateOp
from repro.control.churn import ANNOUNCE
from repro.obs import FakeClock, MetricsRegistry, MonotonicClock
from repro.prefix.prefix import Prefix
from repro.prefix.trie import Fib
from repro.server import (
    CoalescedBatch,
    CommitGate,
    LookupServer,
    PendingLookup,
    RequestCoalescer,
    RequestShed,
    ServerClosed,
    ServerError,
    ThreadWorkerPool,
    WorkerCrash,
    fib_snapshot,
)

WIDTH = 8


def small_fib(seed=3, size=40):
    rng = random.Random(seed)
    fib = Fib(WIDTH)
    while len(fib) < size:
        length = rng.randint(1, WIDTH)
        fib.insert(Prefix.from_bits(rng.getrandbits(length), length, WIDTH),
                   rng.randint(1, 99))
    return fib


class RecordingSink:
    """A coalescer sink that records batches and can refuse them."""

    def __init__(self, accept=True):
        self.batches = []
        self.accept = accept

    def __call__(self, batch):
        self.batches.append(batch)
        return self.accept


class BlockingEngine:
    """Duck-typed engine whose lookup blocks until released."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def lookup_batch(self, addresses):
        self.entered.set()
        assert self.release.wait(30)
        return [None] * len(addresses)


class FailingEngine:
    def lookup_batch(self, addresses):
        raise RuntimeError("engine exploded")


# ---------------------------------------------------------------------------
# Clocks
# ---------------------------------------------------------------------------


class TestClocks:
    def test_fake_clock_advances_and_fires_in_deadline_order(self):
        clock = FakeClock()
        fired = []
        clock.call_at(2.0, lambda: fired.append("b"))
        clock.call_at(1.0, lambda: fired.append("a"))
        clock.call_at(9.0, lambda: fired.append("later"))
        clock.advance(2.5)
        assert fired == ["a", "b"]
        assert clock.now() == 2.5
        assert clock.pending_timers() == 1

    def test_fake_clock_cancel_suppresses_callback(self):
        clock = FakeClock()
        fired = []
        handle = clock.call_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        clock.advance(5.0)
        assert fired == []
        assert clock.pending_timers() == 0

    def test_fake_clock_rejects_backward_advance(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-0.1)

    def test_fake_clock_callback_sees_its_deadline_as_now(self):
        clock = FakeClock()
        seen = []
        rearmed = []
        clock.call_at(1.0, lambda: (seen.append(clock.now()),
                                    clock.call_at(clock.now() + 1.0,
                                                  lambda: rearmed.append(
                                                      clock.now()))))
        clock.advance(3.0)
        assert seen == [1.0]
        assert rearmed == [2.0]

    def test_monotonic_clock_timer_fires(self):
        clock = MonotonicClock()
        done = threading.Event()
        clock.call_at(clock.now(), done.set)
        assert done.wait(10)

    def test_monotonic_clock_cancel(self):
        clock = MonotonicClock()
        fired = threading.Event()
        handle = clock.call_at(clock.now() + 30.0, fired.set)
        handle.cancel()
        assert not fired.wait(0.01)


# ---------------------------------------------------------------------------
# PendingLookup / CoalescedBatch
# ---------------------------------------------------------------------------


class TestPendingLookup:
    def test_empty_request_is_immediately_done(self):
        handle = PendingLookup([], 0.0)
        assert handle.done()
        assert handle.result(0) == []

    def test_scatter_orders_and_tags_epoch(self):
        handle = PendingLookup([10, 20, 30], 0.0)
        assert not handle._scatter(0, [1], epoch=3)
        assert handle._scatter(1, [2, 4], epoch=4)
        assert handle.result(0) == [1, 2, 4]
        assert handle.epoch == 4
        assert handle.epoch_span == (3, 4)
        assert handle.deliveries == 2

    def test_duplicate_delivery_is_a_hard_bug(self):
        handle = PendingLookup([10], 0.0)
        handle._scatter(0, [1], epoch=0)
        with pytest.raises(AssertionError):
            handle._scatter(0, [1], epoch=0)

    def test_fail_is_idempotent_and_raises_on_result(self):
        handle = PendingLookup([10], 0.0)
        assert handle._fail(RequestShed("drop"))
        assert not handle._fail(ServerClosed("late"))
        with pytest.raises(RequestShed):
            handle.result(0)

    def test_batch_complete_requires_matching_hop_count(self):
        handle = PendingLookup([1, 2], 0.0)
        batch = CoalescedBatch([1, 2], [(handle, 0, 0, 2)], "size")
        with pytest.raises(ValueError):
            batch.complete([7], epoch=0)
        assert batch.complete([7, 8], epoch=0) == [handle]


# ---------------------------------------------------------------------------
# RequestCoalescer
# ---------------------------------------------------------------------------


class TestCoalescer:
    def test_size_trigger_cuts_exactly_at_max_batch(self):
        sink = RecordingSink()
        clock = FakeClock()
        box = RequestCoalescer(sink, max_batch=4, max_wait_s=1.0, clock=clock)
        handles = [box.submit([i, i + 100]) for i in range(3)]
        assert [len(b) for b in sink.batches] == [4]
        assert sink.batches[0].reason == "size"
        assert sink.batches[0].addresses == [0, 100, 1, 101]
        # The third request's two addresses sit in the open batch.
        assert box.pending_addresses == 2
        sink.batches[0].complete([9, 9, 9, 9], epoch=0)
        assert handles[0].done() and handles[1].done()
        assert not handles[2].done()

    def test_large_request_spans_batches_in_order(self):
        sink = RecordingSink()
        box = RequestCoalescer(sink, max_batch=3, max_wait_s=1.0,
                               clock=FakeClock())
        handle = box.submit(list(range(8)))
        assert [b.addresses for b in sink.batches] == [[0, 1, 2], [3, 4, 5]]
        box.flush()
        assert sink.batches[2].addresses == [6, 7]
        for batch in sink.batches:
            batch.complete([a * 10 for a in batch.addresses], epoch=0)
        assert handle.result(0) == [a * 10 for a in range(8)]
        assert handle.deliveries == 3

    def test_deadline_trigger_fires_via_fake_clock(self):
        sink = RecordingSink()
        clock = FakeClock()
        box = RequestCoalescer(sink, max_batch=100, max_wait_s=0.5,
                               clock=clock)
        box.submit([1, 2])
        clock.advance(0.4)
        assert sink.batches == []  # not due yet
        clock.advance(0.2)
        assert [b.reason for b in sink.batches] == ["deadline"]
        assert box.pending_addresses == 0

    def test_deadline_measured_from_first_address(self):
        sink = RecordingSink()
        clock = FakeClock()
        box = RequestCoalescer(sink, max_batch=100, max_wait_s=0.5,
                               clock=clock)
        box.submit([1])
        clock.advance(0.3)
        box.submit([2])  # must NOT re-arm the deadline
        clock.advance(0.3)
        assert [b.addresses for b in sink.batches] == [[1, 2]]

    def test_size_cut_disarms_the_deadline(self):
        sink = RecordingSink()
        clock = FakeClock()
        box = RequestCoalescer(sink, max_batch=2, max_wait_s=0.5, clock=clock)
        box.submit([1, 2])  # exact fit: size cut, batch empty again
        assert [b.reason for b in sink.batches] == ["size"]
        clock.advance(10.0)
        assert len(sink.batches) == 1  # no spurious deadline flush
        assert clock.pending_timers() == 0

    def test_manual_flush_and_reasons(self):
        sink = RecordingSink()
        box = RequestCoalescer(sink, max_batch=100, max_wait_s=1.0,
                               clock=FakeClock())
        box.submit([1])
        box.flush()
        assert [b.reason for b in sink.batches] == ["manual"]
        box.flush()  # empty flush is a no-op
        assert len(sink.batches) == 1

    def test_close_drains_then_rejects(self):
        sink = RecordingSink()
        box = RequestCoalescer(sink, max_batch=100, max_wait_s=1.0,
                               clock=FakeClock())
        handle = box.submit([5])
        box.close(drain=True)
        assert [b.reason for b in sink.batches] == ["drain"]
        sink.batches[0].complete([1], epoch=0)
        assert handle.result(0) == [1]
        with pytest.raises(ServerClosed):
            box.submit([6])

    def test_close_without_drain_fails_pending(self):
        sink = RecordingSink()
        box = RequestCoalescer(sink, max_batch=100, max_wait_s=1.0,
                               clock=FakeClock())
        handle = box.submit([5])
        box.close(drain=False)
        assert sink.batches == []
        with pytest.raises(ServerClosed):
            handle.result(0)

    def test_refused_batch_fails_with_request_shed(self):
        sink = RecordingSink(accept=False)
        box = RequestCoalescer(sink, max_batch=2, max_wait_s=1.0,
                               clock=FakeClock())
        handle = box.submit([1, 2])
        with pytest.raises(RequestShed):
            handle.result(0)


# ---------------------------------------------------------------------------
# CommitGate
# ---------------------------------------------------------------------------


class TestCommitGate:
    def test_writer_waits_for_readers(self):
        gate = CommitGate()
        in_write = threading.Event()
        gate.acquire_read()
        writer = threading.Thread(
            target=lambda: (gate.acquire_write(), in_write.set()))
        writer.start()
        assert not in_write.wait(0.05)
        gate.release_read()
        assert in_write.wait(10)
        gate.release_write()
        writer.join()

    def test_waiting_writer_blocks_new_readers(self):
        gate = CommitGate()
        gate.acquire_read()
        writer = threading.Thread(target=lambda: (gate.acquire_write(),
                                                  gate.release_write()))
        writer.start()
        # Give the writer a moment to start waiting, then try to read.
        got_read = threading.Event()
        reader = threading.Thread(target=lambda: (gate.acquire_read(),
                                                  got_read.set()))
        reader.start()
        assert not got_read.wait(0.05)  # writer-preference holds
        gate.release_read()
        assert got_read.wait(10)  # writer ran, then the reader
        gate.release_read()
        writer.join()
        reader.join()

    def test_writer_is_never_starved_by_a_reader_stream(self):
        # A continuous stream of short readers must not starve the
        # writer: once the writer is waiting, new readers queue behind
        # it, so the writer gets in as soon as the *current* readers
        # drain — writer preference is the anti-starvation mechanism.
        gate = CommitGate()
        in_write = threading.Event()
        stop = threading.Event()
        served_before_write = []

        def reader_stream():
            while not stop.is_set():
                gate.acquire_read()
                if not in_write.is_set():
                    served_before_write.append(1)
                gate.release_read()

        readers = [threading.Thread(target=reader_stream) for _ in range(4)]
        for thread in readers:
            thread.start()
        writer = threading.Thread(
            target=lambda: (gate.acquire_write(), in_write.set(),
                            gate.release_write()))
        writer.start()
        # The writer must land despite the stream never pausing.
        assert in_write.wait(10), "writer starved by continuous readers"
        stop.set()
        writer.join()
        for thread in readers:
            thread.join()

    def test_reader_admitted_after_pending_write_completes(self):
        gate = CommitGate()
        gate.acquire_read()
        write_done = threading.Event()
        writer = threading.Thread(
            target=lambda: (gate.acquire_write(), write_done.set(),
                            gate.release_write()))
        writer.start()
        read_got_in = threading.Event()
        reader = threading.Thread(
            target=lambda: (gate.acquire_read(), read_got_in.set(),
                            gate.release_read()))
        reader.start()
        assert not read_got_in.wait(0.05)  # held out by the pending write
        gate.release_read()
        assert write_done.wait(10)
        assert read_got_in.wait(10)  # admitted once the write retired
        writer.join()
        reader.join()

    def test_unbalanced_releases_raise(self):
        gate = CommitGate()
        with pytest.raises(ServerError):
            gate.release_read()  # nothing acquired
        with pytest.raises(ServerError):
            gate.release_write()  # no writer active
        gate.acquire_read()
        gate.release_read()
        with pytest.raises(ServerError):
            gate.release_read()  # double release
        gate.acquire_write()
        gate.release_write()
        with pytest.raises(ServerError):
            gate.release_write()  # double release

    def test_context_managers_balance_on_exception(self):
        gate = CommitGate()
        with pytest.raises(RuntimeError):
            with gate.read():
                raise RuntimeError("reader exploded")
        with pytest.raises(RuntimeError):
            with gate.write():
                raise RuntimeError("writer exploded")
        # Both sides fully released: a writer can get in immediately.
        with gate.write():
            pass


# ---------------------------------------------------------------------------
# ThreadWorkerPool
# ---------------------------------------------------------------------------


class TestThreadWorkerPool:
    def test_shed_policy_refuses_when_queue_full(self):
        engine = BlockingEngine()
        pool = ThreadWorkerPool([engine], queue_depth=1, overload="shed")
        pool.start()
        try:
            first = CoalescedBatch([1], [(PendingLookup([1], 0.0), 0, 0, 1)],
                                   "size")
            assert pool.submit(first)
            assert engine.entered.wait(10)  # worker is busy on `first`
            assert pool.submit(CoalescedBatch(
                [2], [(PendingLookup([2], 0.0), 0, 0, 1)], "size"))
            refused = CoalescedBatch(
                [3], [(PendingLookup([3], 0.0), 0, 0, 1)], "size")
            assert not pool.submit(refused)  # depth-1 queue is full
        finally:
            engine.release.set()
            pool.close(drain=True)

    def test_worker_exception_fails_the_batch(self):
        errors = []
        pool = ThreadWorkerPool([FailingEngine()],
                                on_error=lambda b, e: errors.append(e))
        pool.start()
        handle = PendingLookup([1], 0.0)
        pool.submit(CoalescedBatch([1], [(handle, 0, 0, 1)], "size"))
        with pytest.raises(RuntimeError, match="engine exploded"):
            handle.result(10)
        pool.close(drain=True)
        assert len(errors) == 1

    def test_close_without_drain_fails_queued_batches(self):
        engine = BlockingEngine()
        pool = ThreadWorkerPool([engine], queue_depth=4)
        pool.start()
        busy = PendingLookup([1], 0.0)
        queued = PendingLookup([2], 0.0)
        pool.submit(CoalescedBatch([1], [(busy, 0, 0, 1)], "size"))
        assert engine.entered.wait(10)
        pool.submit(CoalescedBatch([2], [(queued, 0, 0, 1)], "size"))
        engine.release.set()
        pool.close(drain=False)
        assert not pool.alive()
        # The queued batch either got failed or served; never lost.
        assert queued.done()

    def test_submit_before_start_raises(self):
        pool = ThreadWorkerPool([BlockingEngine()])
        with pytest.raises(ServerError):
            pool.submit(CoalescedBatch([1], [], "size"))

    def test_wrong_length_answer_fails_futures_not_the_worker(self):
        # Regression: a scatter error (here: an engine returning the
        # wrong number of hops) used to escape the worker's try block,
        # silently killing the thread with the futures left unresolved
        # and no error counted.  It must fail the batch and serve on.
        class ShortEngine:
            def __init__(self):
                self.calls = 0

            def lookup_batch(self, addresses):
                self.calls += 1
                if self.calls == 1:
                    return [None]  # wrong length for a 2-address batch
                return [None] * len(addresses)

        errors = []
        engine = ShortEngine()
        pool = ThreadWorkerPool([engine],
                                on_error=lambda b, e: errors.append(e))
        pool.start()
        try:
            bad = PendingLookup([1, 2], 0.0)
            pool.submit(CoalescedBatch([1, 2], [(bad, 0, 0, 2)], "size"))
            with pytest.raises(ValueError):
                bad.result(10)  # resolved, not hung
            assert len(errors) == 1
            # The worker survived the scatter error and still serves.
            ok = PendingLookup([3, 4], 0.0)
            pool.submit(CoalescedBatch([3, 4], [(ok, 0, 0, 2)], "size"))
            assert ok.result(10) == [None, None]
            assert pool.alive_workers() == 1
        finally:
            pool.close(drain=True)

    def test_worker_crash_reports_exit_with_unscattered_orphan(self):
        class CrashingEngine:
            def lookup_batch(self, addresses):
                raise WorkerCrash("induced death")

        exits = []
        pool = ThreadWorkerPool(
            [CrashingEngine()],
            on_worker_exit=lambda w, e, o: exits.append((w, e, o)))
        pool.start()
        try:
            handle = PendingLookup([1], 0.0)
            batch = CoalescedBatch([1], [(handle, 0, 0, 1)], "size")
            pool.submit(batch)
            deadline = threading.Event()
            for _ in range(200):
                if exits:
                    break
                deadline.wait(0.01)
            assert len(exits) == 1
            worker, exc, orphan = exits[0]
            assert worker == 0 and isinstance(exc, WorkerCrash)
            assert orphan is batch
            assert not handle.done()  # unscattered: safe to re-queue
            assert pool.alive_workers() == 0
            # requeue with no live worker: queued (a restart drains it)
            # or failed typed — never silently dropped.
            pool.restart_worker(0)
            assert pool.requeue(batch) or handle.done()
        finally:
            pool.close(drain=False)

    def test_restart_worker_replaces_a_dead_thread(self):
        class DieOnceEngine:
            def __init__(self):
                self.calls = 0

            def lookup_batch(self, addresses):
                self.calls += 1
                if self.calls == 1:
                    raise WorkerCrash("first batch kills")
                return [None] * len(addresses)

        exits = []
        pool = ThreadWorkerPool(
            [DieOnceEngine()],
            on_worker_exit=lambda w, e, o: exits.append((w, o)))
        pool.start()
        try:
            doomed = PendingLookup([1], 0.0)
            pool.submit(CoalescedBatch([1], [(doomed, 0, 0, 1)], "size"))
            for _ in range(200):
                if exits:
                    break
                threading.Event().wait(0.01)
            assert pool.alive_workers() == 0
            assert pool.restart_worker(0)
            assert pool.alive_workers() == 1
            worker, orphan = exits[0]
            assert pool.requeue(orphan)
            assert doomed.result(10) == [None]
        finally:
            pool.close(drain=True)

    def test_close_is_idempotent_and_concurrent_safe(self):
        engine = BlockingEngine()
        pool = ThreadWorkerPool([engine], queue_depth=4)
        pool.start()
        busy = PendingLookup([1], 0.0)
        pool.submit(CoalescedBatch([1], [(busy, 0, 0, 1)], "size"))
        assert engine.entered.wait(10)
        engine.release.set()
        closers = [threading.Thread(target=pool.close,
                                    kwargs={"drain": True})
                   for _ in range(4)]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(30)
        assert not pool.alive()
        assert busy.done()
        pool.close(drain=True)  # again, after the fact: a no-op
        with pytest.raises(ServerError):
            pool.submit(CoalescedBatch([2], [], "size"))

    def test_submit_racing_close_never_strands_a_batch(self):
        for _round in range(10):
            engine = BlockingEngine()
            engine.release.set()  # serve instantly
            pool = ThreadWorkerPool([engine], queue_depth=8)
            pool.start()
            handles = []
            stop = threading.Event()

            def submitter():
                while not stop.is_set():
                    handle = PendingLookup([1], 0.0)
                    batch = CoalescedBatch([1], [(handle, 0, 0, 1)], "size")
                    try:
                        if pool.submit(batch):
                            handles.append(handle)
                    except ServerError:
                        return

            thread = threading.Thread(target=submitter)
            thread.start()
            threading.Event().wait(0.01)
            pool.close(drain=True)
            stop.set()
            thread.join(30)
            # Every accepted batch resolved: served or typed-failed.
            for handle in handles:
                assert handle.done() or handle.result(10) is not None


# ---------------------------------------------------------------------------
# LookupServer end-to-end
# ---------------------------------------------------------------------------


class TestLookupServer:
    def test_serves_conformant_answers(self):
        fib = small_fib()
        with LookupServer(HiBst(fib), workers=2, max_batch=16) as server:
            addresses = list(range(256))
            handles = [server.submit(addresses[i:i + 7])
                       for i in range(0, 256, 7)]
            server.flush()
            got = []
            for handle in handles:
                got.extend(handle.result(30))
        assert got == [fib.lookup(a) for a in addresses]

    def test_lookup_and_lookup_batch_sugar(self):
        fib = small_fib(seed=5)
        with LookupServer(HiBst(fib), workers=1) as server:
            assert server.lookup(7, timeout=30) == fib.lookup(7)
            assert server.lookup_batch([1, 2, 3], timeout=30) == \
                [fib.lookup(a) for a in (1, 2, 3)]

    def test_metrics_wiring(self):
        fib = small_fib()
        registry = MetricsRegistry()
        with LookupServer(HiBst(fib), workers=2, max_batch=8,
                          registry=registry, name="t") as server:
            for i in range(4):
                server.submit([i, i + 1, i + 2, i + 3])
            server.flush()
            server.lookup_batch([1], timeout=30)
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["repro_server_requests_total"][
            '{server="t"}'] == 5
        assert counters["repro_server_addresses_total"][
            '{server="t"}'] == 17
        flushes = counters["repro_server_flush_total"]
        assert flushes['{reason="size",server="t"}'] == 2
        assert '{server="t"}' in counters["repro_server_batches_total"]
        assert snap["gauges"]["repro_server_queue_depth"][
            '{server="t"}'] == 0
        sizes = snap["histograms"]["repro_server_batch_size"][""]
        assert sizes["count"] >= 3
        assert sizes["sum"] == 17  # every accepted address got batched
        timings = registry.timings_snapshot()
        assert timings['repro_server_request{server="t"}']["count"] == 5

    def test_commit_quiesce_updates_answers_and_epoch(self):
        fib = small_fib(seed=9, size=20)
        managed = ManagedFib(lambda f: HiBst(f), fib)
        with LookupServer(managed=managed, workers=2,
                          max_batch=16) as server:
            address = 0b10100000
            before = managed.oracle.lookup(address)
            assert server.lookup(address, timeout=30) == before
            prefix = Prefix.from_bits(0b101, 3, WIDTH)
            outcome = managed.apply_batch(
                [UpdateOp(ANNOUNCE, prefix=prefix, next_hop=77)])
            assert outcome in ("batch_applied", "batch_rebuilt")
            assert server.epoch == 1
            after = managed.oracle.lookup(address)
            assert server.lookup(address, timeout=30) == after
            counters = server.registry.snapshot()["counters"]
            assert sum(
                counters["repro_server_commits_total"].values()) == 1

    def test_close_is_idempotent_and_submit_after_close_raises(self):
        fib = small_fib()
        server = LookupServer(HiBst(fib), workers=1)
        server.start()
        server.close()
        server.close()
        with pytest.raises(ServerError):
            server.submit([1])
        assert server.drained()

    def test_constructor_validation(self):
        fib = small_fib()
        algo = HiBst(fib)
        with pytest.raises(ValueError):
            LookupServer(algo, mode="fiber")
        with pytest.raises(ValueError):
            LookupServer(algo, overload="panic")
        with pytest.raises(ValueError):
            LookupServer(algo, workers=0)
        with pytest.raises(ValueError):
            LookupServer()  # no algorithm
        with pytest.raises(ServerError):
            LookupServer(algo, mode="process")  # no factory/base_fib

    def test_worker_engines_are_replicas(self):
        fib = small_fib()
        with LookupServer(HiBst(fib), workers=3, name="r") as server:
            engines = server.engines()
            assert len(engines) == 3
            assert [e.name for e in engines] == ["r-w0", "r-w1", "r-w2"]
            assert server.workers == 3


# ---------------------------------------------------------------------------
# Process mode
# ---------------------------------------------------------------------------


class TestProcessMode:
    def test_fib_snapshot_roundtrip(self):
        fib = small_fib(seed=11)
        snapshot = fib_snapshot(fib)
        rebuilt = Fib(WIDTH)
        for bits, length, hop in snapshot:
            rebuilt.insert(Prefix.from_bits(bits, length, WIDTH), hop)
        assert list(rebuilt) == list(fib)

    def test_process_server_serves_and_commits(self):
        fib = small_fib(seed=13, size=25)
        managed = ManagedFib(lambda f: HiBst(f), fib)
        with LookupServer(managed=managed, workers=2, mode="process",
                          max_batch=32) as server:
            addresses = list(range(0, 256, 3))
            want = [managed.oracle.lookup(a) for a in addresses]
            assert server.lookup_batch(addresses, timeout=60) == want
            prefix = Prefix.from_bits(0b01, 2, WIDTH)
            managed.apply_batch(
                [UpdateOp(ANNOUNCE, prefix=prefix, next_hop=88)])
            assert server.epoch == 1
            want = [managed.oracle.lookup(a) for a in addresses]
            assert server.lookup_batch(addresses, timeout=60) == want
