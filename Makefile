# Convenience targets for the CRAM-lens reproduction.

PYTHON ?= python

.PHONY: install test ci conformance bench bench-smoke bench-vector \
        bench-serve bench-updates bench-history chaos spans examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

ci: test          ## what .github/workflows/ci.yml runs: tests + smokes
	$(PYTHON) -m repro churn --smoke --algo resail --seed 7 \
	    --metrics-out benchmarks/results/churn_smoke_metrics.json \
	    --events-out benchmarks/results/churn_smoke_events.jsonl
	$(PYTHON) -m repro churn --smoke --algo bsic --seed 7
	$(PYTHON) -m repro trace --smoke
	$(PYTHON) -m repro serve --smoke --algo resail --seed 7 \
	    --metrics-out benchmarks/results/serve_smoke_metrics.json
	$(PYTHON) -m repro serve --smoke --algo sail --backend vector --seed 7
	$(PYTHON) -m repro serve --smoke --algo resail --workers 2 \
	    --max-batch 64 --max-wait 1.0 --seed 7
	$(PYTHON) -m repro bench-serve --smoke --seed 7 \
	    --out benchmarks/results/serve_concurrency_cli.json
	$(PYTHON) -m repro artifact save rib --algo resail --scale 0.005 \
	    --seed 7 --catalog benchmarks/results/artifacts
	$(PYTHON) -m repro artifact verify rib --deep \
	    --catalog benchmarks/results/artifacts
	$(PYTHON) -m repro serve --smoke --algo resail --seed 7 \
	    --load rib --catalog benchmarks/results/artifacts
	$(PYTHON) -m repro chaos-soak --mode both --seed 7 \
	    --out benchmarks/results/chaos_soak.json
	REPRO_BENCH_SCALE=0.02 $(PYTHON) -m pytest \
	    benchmarks/bench_tab04_ipv4_cram.py benchmarks/bench_updates.py \
	    benchmarks/bench_throughput.py benchmarks/bench_serve.py \
	    benchmarks/bench_coldstart.py -q
	$(PYTHON) -m repro bench-history --check

conformance:      ## wide-width engine conformance sweep (CI's slow job)
	$(PYTHON) -m pytest tests/test_engine_conformance.py -q -m slow

bench:            ## full paper reproduction (~6 min, full BGP scale)
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:      ## fast shape check on 2%-scale databases (~30 s)
	REPRO_BENCH_SCALE=0.02 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-vector:     ## lane-compiler gate: vector >= 3x scalar plan
	REPRO_BENCH_SCALE=0.02 $(PYTHON) -m pytest \
	    benchmarks/bench_throughput.py -q -k vector

bench-serve:      ## serving gate: coalesced >= 2x sequential
	REPRO_BENCH_SCALE=0.02 $(PYTHON) -m pytest \
	    benchmarks/bench_serve.py -q

bench-updates:    ## churn gate: delta commits >= 5x full recompiles
	REPRO_BENCH_SCALE=0.02 $(PYTHON) -m pytest \
	    benchmarks/bench_updates.py -q

bench-history:    ## benchmark trajectory: append sidecars + regression report
	$(PYTHON) -m repro bench-history --check

chaos:            ## chaos soak: thread + process pools under fault injection
	$(PYTHON) -m repro chaos-soak --mode both --seed 7 \
	    --out benchmarks/results/chaos_soak.json
	$(PYTHON) -m repro serve --smoke --algo resail --workers 2 \
	    --chaos default --seed 7

spans:            ## span smoke: full sampling, consistency check, Perfetto export
	$(PYTHON) -m repro serve --smoke --algo resail --workers 2 \
	    --sample-rate 1.0 --seed 7 \
	    --span-jsonl benchmarks/results/serve_spans.jsonl \
	    --span-chrome benchmarks/results/serve_spans_trace.json
	$(PYTHON) -m repro serve --smoke --algo resail --workers 2 \
	    --chaos worker_kill --chaos-seed 1 --sample-rate 1.0 --seed 7 \
	    --span-jsonl benchmarks/results/serve_chaos_spans.jsonl \
	    --span-chrome benchmarks/results/serve_chaos_spans_trace.json

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	       benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
