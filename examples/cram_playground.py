#!/usr/bin/env python3
"""Authoring a CRAM program by hand (the §2.1 machine, end to end).

Everything else in this repo builds CRAM programs *for* you; this
example writes one from scratch — a toy two-color packet marker — to
show the moving parts: registers, exact/ternary tables, the statement
grammar, dependency analysis, metrics, and the interpreter.

The program marks packets from a small set of "priority" prefixes with
color 1 and everything else with color 0, then rewrites a header byte.

Run:  python examples/cram_playground.py
"""

from repro.core import (
    Assoc,
    Bin,
    Const,
    CramProgram,
    Reg,
    Statement,
    Step,
    direct_index_table,
    measure,
    run_packet,
    ternary_table,
)
from repro.memory import TcamTable
from repro.prefix import parse_ipv4_prefix


def build_program() -> CramProgram:
    prog = CramProgram(
        "two-color-marker",
        register_width=32,
        registers=["dst", "color", "dscp"],
    )

    # Parser: first four payload bytes are the destination address.
    prog.parser = lambda packet: {"dst": int.from_bytes(packet[:4], "big")}
    # Deparser: emit the chosen DSCP byte.
    prog.deparser = lambda state: bytes([state["dscp"] or 0])

    # Step 1: a ternary prefix table decides the color.
    priority = TcamTable(32, name="priority-prefixes")
    for text in ("10.0.0.0/8", "192.168.0.0/16", "203.0.113.0/24"):
        priority.insert_prefix(parse_ipv4_prefix(text), 1)
    classify = ternary_table(
        "priority-prefixes", key_width=32, entries=len(priority), data_width=1,
        key_selector=lambda s: s["dst"], backing=priority, default=0,
    )
    prog.add_step(Step(
        "classify", table=classify,
        statements=[Statement("color", Assoc(0))],
        reads=["dst"],
    ))

    # Step 2: a directly-indexed table maps color -> DSCP codepoint,
    # and a guarded statement shows the `if (cond): dest = expr` form.
    dscp_map = direct_index_table(
        "color-to-dscp", key_width=1, data_width=6,
        key_selector=lambda s: s["color"] or 0,
        backing=lambda color: 46 if color else 0,  # EF vs best-effort
    )
    prog.add_step(
        Step("mark", table=dscp_map,
             statements=[Statement("dscp", Assoc(0),
                                   cond=Bin(">=", Reg("color"), Const(0)))],
             reads=["color"]),
        after=["classify"],
    )
    return prog


def main() -> None:
    prog = build_program()
    prog.validate()

    print("Parallel schedule:", prog.parallel_schedule())
    print("Critical path    :", " -> ".join(prog.critical_path()))
    metrics = measure(prog)
    print(f"CRAM metrics     : {metrics.describe()}")
    print(f"  ({metrics.tcam_blocks:.4f} TCAM blocks, "
          f"{metrics.sram_pages:.4f} SRAM pages at Tofino-2 geometry)\n")

    for dst in ("10.1.2.3", "8.8.8.8", "203.0.113.5"):
        packet = bytes(int(octet) for octet in dst.split("."))
        out = run_packet(prog, packet)
        print(f"  packet to {dst:>13}  ->  DSCP {out[0]}")


if __name__ == "__main__":
    main()
