#!/usr/bin/env python3
"""IPv6 scaling study: how far do BSIC and HI-BST stretch? (paper §7.2)

Replays the multiverse-scaling experiment: the base AS131072-like
table occupies one 3-bit universe, so copying it into the other
universes grows every table population uniformly — the worst case for
TCAM, SRAM, and stages alike.  The study sweeps the k parameter too
(Appendix A.6), showing why k=24 is the sweet spot.

Run:  python examples/ipv6_scaling_study.py          (quick, 5% scale)
      FULL=1 python examples/ipv6_scaling_study.py   (full BGP scale)
"""

import os

from repro.algorithms import Bsic
from repro.analysis import (
    Table,
    bsic_k_sweep,
    hibst_max_feasible,
    ipv6_max_feasible,
    ipv6_scaling_series,
    optimal_k,
)
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.datasets import synthesize_as131072

FULL_SIZE = 193_060


def main() -> None:
    scale = 1.0 if os.environ.get("FULL") else 0.05
    fib = synthesize_as131072(scale=scale)
    print(f"Base IPv6 table: {len(fib):,} prefixes "
          f"({scale:.0%} of current BGP scale)\n")

    # --- Appendix A.6: the k trade-off -------------------------------
    points = bsic_k_sweep(fib, ks=[16, 20, 24, 28, 32])
    sweep = Table("BSIC k sweep (ideal RMT)",
                  ["k", "CRAM steps", "Stages", "TCAM blocks", "SRAM pages"])
    for p in points:
        sweep.add_row(p.k, p.cram_steps, p.stages, p.tcam_blocks, p.sram_pages)
    print(sweep.render())
    best_k = optimal_k(points)
    print(f"-> stages are minimized at k={best_k} (paper: 24); larger k "
          "buys shallower BSTs\n   but pays for them in initial-TCAM "
          "stages, so there is no latency-memory trade-off.\n")

    # --- §7.2: multiverse scaling ------------------------------------
    bsic = Bsic(fib, k=24)
    base_layout = bsic.layout()
    base_size = len(fib)
    if scale < 1.0:
        base_layout = base_layout.scaled(FULL_SIZE / base_size)
        base_size = FULL_SIZE

    series = ipv6_scaling_series(base_layout, base_size, [1, 2, 4, 8])
    growth = Table("Multiverse scaling (SRAM pages; * = infeasible)",
                   ["DB size", "BSIC/ideal", "BSIC/Tofino-2", "HI-BST/ideal"])
    for i in range(4):
        def cell(name):
            p = series[name][i]
            return f"{p.sram_pages}{'' if p.feasible else ' *'}"
        growth.add_row(series["BSIC / Ideal RMT"][i].size,
                       cell("BSIC / Ideal RMT"), cell("BSIC / Tofino-2"),
                       cell("HI-BST / Ideal RMT"))
    print(growth.render())

    print("\nFeasibility frontiers (largest database that still fits):")
    print(f"  BSIC on ideal RMT : "
          f"{ipv6_max_feasible(base_layout, base_size, map_to_ideal_rmt):,} "
          "prefixes (paper ~630k)")
    print(f"  BSIC on Tofino-2  : "
          f"{ipv6_max_feasible(base_layout, base_size, map_to_tofino2):,} "
          "prefixes (paper ~390k)")
    print(f"  HI-BST on ideal   : {hibst_max_feasible(map_to_ideal_rmt):,} "
          "prefixes (paper ~340k)")


if __name__ == "__main__":
    main()
