#!/usr/bin/env python3
"""In-network telemetry with CRAM register tables (paper §2.5, §2.6).

A switch must surface its heaviest flows without keeping per-flow
state.  The CRAM recipe: a count-min sketch whose rows are stateful
register-match tables — updated in ONE step because the row hashes are
data-independent (idiom I7, the same move RESAIL makes with its
bitmaps) — plus a small exact table that flows are promoted into once
their estimate crosses a threshold [68].

Run:  python examples/telemetry_sketch.py
"""

import random

from repro.core import run
from repro.measure import CountMinSketch, HeavyHitters


def main() -> None:
    rng = random.Random(2026)

    # A Zipf-flavoured flow mix: a few elephants, many mice.
    elephants = {rng.getrandbits(32): rng.randint(800, 2000) for _ in range(5)}
    mice = [rng.getrandbits(32) for _ in range(4000)]

    sketch = CountMinSketch.for_error(epsilon=0.001, delta=0.01)
    detector = HeavyHitters(threshold=500, sketch=sketch, table_capacity=16)

    packets = []
    for flow, count in elephants.items():
        packets += [flow] * count
    packets += mice
    rng.shuffle(packets)
    for flow in packets:
        detector.update(flow)

    print(f"Processed {len(packets):,} packets "
          f"({len(elephants)} elephants among {len(mice):,} mice)\n")

    print("Detected heavy hitters (threshold 500 packets):")
    detected = detector.heavy_hitters()
    for flow, count in detected:
        truth = elephants.get(flow, 1)
        print(f"  flow {flow:>10x}: estimated {count:>5}  (true {truth})")
    assert set(f for f, _ in detected) == set(elephants), "missed an elephant!"
    print("  -> all five elephants found, no mouse promoted.\n")

    # The CRAM view: one parallel step of register reads + a combine.
    program = sketch.cram_program()
    waves = program.parallel_schedule()
    metrics = sketch.cram_metrics()
    print("CRAM rendering of the sketch query:")
    print(f"  waves: {[len(w) for w in waves]} "
          f"({sketch.depth} register rows probed in parallel — idiom I7)")
    print(f"  steps: {metrics.steps}")
    print(f"  state: {metrics.register_bits:,} register bits "
          f"({sketch.depth} rows x {sketch.width} x {sketch.counter_bits}b), "
          "counted apart from TCAM/SRAM per §2.6")

    flow = next(iter(elephants))
    state = run(program, {"key": flow})
    print(f"\n  interpreter check: estimate({flow:x}) = {state['estimate']} "
          f"== query() = {sketch.query(flow)}")

    print("\n§2.6's caveat, visible here: hash-distributed counters are")
    print("pseudo-random, so no compression idiom (I1-I3) can shrink them —")
    print("only the structural idioms (I5-I8) apply to measurement state.")


if __name__ == "__main__":
    main()
