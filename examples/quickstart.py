#!/usr/bin/env python3
"""Quickstart: build RESAIL over a synthetic BGP table and look up routes.

Walks the package's core loop in under a minute:

1. synthesize an AS65000-like IPv4 forwarding table,
2. build RESAIL (the paper's IPv4 winner) over it,
3. route some addresses and check them against the reference trie,
4. read off the CRAM metrics and both chip mappings,
5. apply a few incremental updates.

Run:  python examples/quickstart.py
"""

from repro.algorithms import Resail
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.datasets import matching_addresses, synthesize_as65000
from repro.prefix import format_address, parse_ipv4_address, parse_prefix


def main() -> None:
    # 1. A synthetic AS65000-like FIB (1% scale keeps this instant;
    #    drop scale for the full ~930k-prefix table).
    fib = synthesize_as65000(scale=0.01)
    print(f"Synthetic FIB: {len(fib):,} IPv4 prefixes")

    # 2. RESAIL with the paper's parameter (min_bmp=13, §6.3).
    resail = Resail(fib, min_bmp=13)
    print(f"Built {resail.name}")
    for application in resail.idioms_applied():
        print(f"  {application.describe()}")

    # 3. Route traffic; the reference trie is the correctness oracle.
    print("\nSample lookups:")
    for address in matching_addresses(fib, 5, seed=1):
        hop = resail.lookup(address)
        assert hop == fib.lookup(address)
        prefix = fib.lookup_prefix(address)
        print(f"  {format_address(address, 32):>15}  ->  port {hop:<3} via {prefix}")
    miss = parse_ipv4_address("203.0.113.99")
    print(f"  {format_address(miss, 32):>15}  ->  {resail.lookup(miss)} (no route)")

    # 4. The three-model hierarchy of §8: CRAM -> ideal RMT -> Tofino-2.
    metrics = resail.cram_metrics()
    print(f"\nCRAM metrics : {metrics.describe()}")
    print(f"Ideal RMT    : {map_to_ideal_rmt(resail.layout()).describe()}")
    print(f"Tofino-2     : {map_to_tofino2(resail.layout()).describe()}")

    # 5. Incremental updates (Appendix A.3.1).
    new_route = parse_prefix("198.51.100.0/24")
    resail.insert(new_route, 42)
    probe = parse_ipv4_address("198.51.100.7")
    print(f"\nAfter insert {new_route}: {format_address(probe, 32)} -> "
          f"port {resail.lookup(probe)}")
    resail.delete(new_route)
    print(f"After delete: {format_address(probe, 32)} -> {resail.lookup(probe)}")


if __name__ == "__main__":
    main()
