#!/usr/bin/env python3
"""Offloading an ACL to the data plane via the CRAM lens (paper §2.5).

A security team hands the network team a 5-tuple access-control list
to enforce at line rate.  The CRAM question: what does it cost in chip
resources, and do the IP-lookup idioms help?

This example builds a synthetic enterprise ACL, renders it two ways —
one monolithic TCAM versus a destination-cut decision tree with
coalesced leaf tables (I4 + I5) — verifies both against the
linear-scan oracle, and shows §2.6's caveat in the flesh: port ranges
are the one field you can never afford to expand into SRAM.

Run:  python examples/acl_offload.py
"""

from repro.chip import map_to_ideal_rmt
from repro.classify import (
    Classifier,
    TcamClassifier,
    TreeClassifier,
    classifier_workload,
    synthesize_classifier,
)
from repro.core.units import format_bits


def main() -> None:
    rules = synthesize_classifier(800, seed=99)
    oracle = Classifier(rules)
    print(f"ACL: {len(rules)} rules; "
          f"{oracle.total_tcam_rows()} TCAM rows after port-range expansion "
          f"(x{oracle.total_tcam_rows() / len(rules):.2f} blow-up)\n")

    flat = TcamClassifier(rules)
    tree = TreeClassifier(rules, stride=4, binth=16)

    # Enforce some traffic and verify all renderings agree.
    packets = classifier_workload(rules, 1000, seed=100)
    permits = denies = 0
    for packet in packets:
        want = oracle.classify(packet)
        assert flat.classify(packet) == want
        assert tree.classify(packet) == want
        if want is None or want == 0:
            denies += 1
        else:
            permits += 1
    print(f"Enforced 1,000 packets: {permits} matched an action, "
          f"{denies} fell through/denied; flat and tree renderings agree "
          "with the oracle on every packet.\n")

    flat_map = map_to_ideal_rmt(flat.layout())
    tree_map = map_to_ideal_rmt(tree.layout())
    print("Resource comparison (ideal RMT):")
    print(f"  flat TCAM : {flat.rows} rows, "
          f"{format_bits(flat.table.tcam_bits())} of TCAM, "
          f"{flat_map.tcam_blocks} blocks in {flat_map.stages} stage")
    print(f"  cut tree  : {tree.leaf_rows} rows, "
          f"{format_bits(tree.tcam_bits())} of TCAM, "
          f"{tree_map.tcam_blocks} blocks across {tree_map.stages} stages "
          f"(tree depth {tree.depth()})")
    print("  The tree keeps row counts identical (range expansion is")
    print("  inherent) but drops the destination bits each cut consumed")
    print("  and bounds per-stage table sizes.\n")

    print("And the idiom that does NOT transfer from IP lookup (§2.6):")
    print(f"  exact-match (SRAM) rendering would need "
          f"{tree.exact_expansion_rows():.2e} rows —")
    print("  pseudo-random port/protocol bits are incompressible, so")
    print("  classification keeps its TCAM while IP lookup can shed it.")


if __name__ == "__main__":
    main()
