#!/usr/bin/env python3
"""Incremental route churn across the three new algorithms (App. A.3).

BGP speakers apply a steady stream of announcements and withdrawals.
This example replays a random churn trace against RESAIL, MASHUP, and
BSIC simultaneously, verifying after every change that all three agree
with the reference trie — and timing the update cost, which illustrates
the paper's guidance: RESAIL and MASHUP update cheaply; BSIC's
BST-level dependencies make updates costly (A.3.2).

Run:  python examples/incremental_updates.py
"""

import random
import time

from repro.algorithms import Bsic, Mashup, Resail
from repro.datasets import synthesize_as65000, uniform_addresses
from repro.prefix import Prefix

CHURN_STEPS = 120
PROBES = 128


def main() -> None:
    rng = random.Random(2025)
    fib = synthesize_as65000(scale=0.002)
    print(f"Base table: {len(fib):,} prefixes; replaying {CHURN_STEPS} updates\n")

    # Mutable copies: algorithms must not share the cached base FIB.
    from repro.prefix import Fib

    oracle = Fib(32, list(fib))
    algos = {
        "RESAIL": Resail(oracle, min_bmp=13, hash_capacity=1 << 16),
        "MASHUP": Mashup(oracle, (16, 4, 4, 8)),
        "BSIC": Bsic(oracle, k=16),
    }
    update_time = {name: 0.0 for name in algos}
    probes = uniform_addresses(32, PROBES, seed=9)

    live = dict(oracle)
    inserted = []
    announcements = withdrawals = 0
    for step in range(CHURN_STEPS):
        if inserted and rng.random() < 0.4:
            prefix = inserted.pop(rng.randrange(len(inserted)))
            withdrawals += 1
            for name, algo in algos.items():
                start = time.perf_counter()
                algo.delete(prefix)
                update_time[name] += time.perf_counter() - start
            oracle.delete(prefix)
            del live[prefix]
        else:
            length = rng.choice([13, 16, 20, 22, 24, 24, 24, 28, 32])
            prefix = Prefix.from_bits(rng.getrandbits(length), length, 32)
            if prefix in live:
                continue
            announcements += 1
            inserted.append(prefix)
            hop = rng.randrange(256)
            for name, algo in algos.items():
                start = time.perf_counter()
                algo.insert(prefix, hop)
                update_time[name] += time.perf_counter() - start
            oracle.insert(prefix, hop)
            live[prefix] = hop

        for address in probes:
            want = oracle.lookup(address)
            for name, algo in algos.items():
                got = algo.lookup(address)
                assert got == want, (step, name, address, got, want)

    print(f"Applied {announcements} announcements and {withdrawals} "
          "withdrawals; all lookups stayed consistent.\n")
    print("Total update time per algorithm (A.3's cost ordering):")
    for name, seconds in sorted(update_time.items(), key=lambda kv: kv[1]):
        per_update = seconds / CHURN_STEPS * 1e3
        print(f"  {name:8s} {seconds:7.3f} s  ({per_update:7.2f} ms/update)")
    print("\nRESAIL touches two memories per update; MASHUP edits one trie "
          "node;\nBSIC rebuilds structures from its auxiliary database — "
          "which is why the\npaper recommends RESAIL/MASHUP when update "
          "rate matters (A.3.2).")


if __name__ == "__main__":
    main()
