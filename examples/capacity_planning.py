#!/usr/bin/env python3
"""Capacity planning with the CRAM lens (the paper's §6.4 workflow).

A network architect has to choose an IP lookup scheme for a new
Tofino-2 deployment *before* writing any P4.  The CRAM model makes the
choice from back-of-the-envelope metrics, then the chip mappings
validate it — exactly the methodology the paper demonstrates.

The scenario: a dual-stack edge router that must carry today's global
tables and survive a decade of growth (§1's observations O1/O2).

Run:  python examples/capacity_planning.py           (quick, 5% scale)
      FULL=1 python examples/capacity_planning.py    (full BGP scale)
"""

import os

from repro.algorithms import Bsic, Mashup, Resail
from repro.analysis import cram_metrics_table, select_best
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.datasets import (
    synthesize_as65000,
    synthesize_as131072,
    years_until_ipv4_exceeds,
    years_until_ipv6_exceeds,
)


def pick(family: str, candidates) -> None:
    rows = [(algo.name, algo.cram_metrics()) for algo in candidates]
    print(cram_metrics_table(f"CRAM metrics ({family})", rows).render())
    winner, rationale = select_best(rows)
    print(f"\n-> CRAM pick for {family}: {winner}")
    print(f"   {rationale}\n")

    chosen = next(a for a in candidates if a.name == winner)
    ideal = map_to_ideal_rmt(chosen.layout())
    tofino = map_to_tofino2(chosen.layout())
    print(f"   validation on ideal RMT : {ideal.describe()}"
          f"  [{'fits' if ideal.feasible else 'DOES NOT FIT'}]")
    print(f"   validation on Tofino-2  : {tofino.describe()}"
          f"  [{'fits' if tofino.feasible else 'DOES NOT FIT'}]\n")


def main() -> None:
    scale = 1.0 if os.environ.get("FULL") else 0.05
    print(f"Synthesizing databases at {scale:.0%} of current BGP scale...\n")
    fib_v4 = synthesize_as65000(scale=scale)
    fib_v6 = synthesize_as131072(scale=scale)

    print(f"IPv4 table: {len(fib_v4):,} prefixes")
    pick("IPv4", [Resail(fib_v4, min_bmp=13), Bsic(fib_v4, k=16),
                  Mashup(fib_v4, (16, 4, 4, 8))])

    print(f"IPv6 table: {len(fib_v6):,} prefixes")
    pick("IPv6", [Bsic(fib_v6, k=24), Mashup(fib_v6, (20, 12, 16, 16))])

    # Will the chosen designs survive a decade? (Paper abstract: RESAIL
    # reaches 2.25M IPv4 prefixes on Tofino-2; BSIC 390k IPv6.)
    print("Headroom against the growth trends of Figure 1:")
    print(f"  IPv4 at RESAIL's 2.25M Tofino-2 capacity : "
          f"{years_until_ipv4_exceeds(2_250_000):.1f} years of doubling-"
          "per-decade growth")
    print(f"  IPv6 at BSIC's 390k Tofino-2 capacity    : "
          f"{years_until_ipv6_exceeds(390_000):.1f} years of doubling-"
          "every-3-years growth (linear slowdown buys more)")


if __name__ == "__main__":
    main()
