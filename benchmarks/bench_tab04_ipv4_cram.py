"""Table 4: CRAM metrics for IPv4 (AS65000-like database).

Paper values: MASHUP(16-4-4-8) 0.31 MB TCAM / 5.92 MB SRAM / 4 steps;
BSIC(k=16) 0.07 MB / 8.64 MB / 10; RESAIL(min_bmp=13) 3.13 KB /
8.58 MB / 2.  RESAIL's row reproduces almost exactly (it depends only
on the length histogram); BSIC/MASHUP depend on prefix values and
reproduce in shape.
"""

import pytest

from _bench_utils import bench_timings, emit

from repro.analysis import cram_metrics_table, select_best
from repro.core import KB, MB


def test_tab04_ipv4_cram_metrics(benchmark, resail_v4, bsic_v4, mashup_v4,
                                 full_scale):
    rows = benchmark.pedantic(
        lambda: [(a.name, a.cram_metrics())
                 for a in (mashup_v4, bsic_v4, resail_v4)],
        rounds=1, iterations=1,
    )
    emit("tab04_ipv4_cram",
         cram_metrics_table("Table 4: CRAM metrics, IPv4 (AS65000)", rows).render(),
         values={
             name: {"tcam_bits": m.tcam_bits, "sram_bits": m.sram_bits,
                    "steps": m.steps}
             for name, m in rows
         },
         timings=bench_timings(benchmark))

    metrics = dict(rows)
    mashup = metrics[mashup_v4.name]
    bsic = metrics[bsic_v4.name]
    resail = metrics[resail_v4.name]

    # Step counts are structural and exact for RESAIL/MASHUP.
    assert resail.steps == 2
    assert mashup.steps == 4

    if full_scale:
        # RESAIL: 3.13 KB TCAM (800 long prefixes x 32b), 8.58 MB SRAM.
        assert resail.tcam_bits == 800 * 32
        assert resail.sram_bits == pytest.approx(8.58 * MB, rel=0.02)
        # Orderings the paper's §6.4 argument rests on:
        assert resail.tcam_bits * 50 < mashup.tcam_bits  # "100X more TCAM"
        assert mashup.sram_bits < resail.sram_bits * 1.45  # "1.4X more SRAM"
        assert bsic.tcam_bits < mashup.tcam_bits
        assert bsic.steps > mashup.steps > resail.steps

        # The §6.4 selection rule picks RESAIL for IPv4.
        winner, _ = select_best(rows)
        assert winner == resail_v4.name
