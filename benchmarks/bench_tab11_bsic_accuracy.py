"""Table 11: predictive accuracy of the CRAM model for BSIC (IPv6).

Paper rows (TCAM blocks / SRAM pages / steps-stages):
CRAM 7.45 / 203.52 / 14 -> ideal RMT 15 / 211 / 14 -> Tofino-2 15 /
416 / 30 (the ~2x SRAM/stage growth comes from 3-way branching costing
two Tofino-2 stages per BST level, §8).
"""

import pytest

from _bench_utils import emit

from repro.analysis import Table, accuracy_report


def test_tab11_bsic_accuracy(benchmark, bsic_v6, full_scale):
    report = benchmark.pedantic(lambda: accuracy_report(bsic_v6),
                                rounds=1, iterations=1)
    table = Table("Table 11: CRAM predictive accuracy, BSIC (IPv6)",
                  ["Model", "TCAM Blocks", "SRAM Pages", "Steps (Stages)"])
    for row in report.rows:
        table.add_row(row.model, row.tcam_blocks, row.sram_pages, row.steps)
    emit("tab11_bsic_accuracy", table.render())

    cram, ideal, tofino = report.rows
    # CRAM steps equal ideal-RMT stages for BSIC (every level is one
    # stage on the ideal chip) minus-or-equal small slack.
    assert ideal.steps <= cram.steps + 2
    if full_scale:
        assert cram.sram_pages == pytest.approx(203.5, rel=0.25)
        assert 12 <= ideal.steps <= 17
        # Tofino-2 doubles BST stages and derates SRAM by ~2x.
        assert 1.7 <= report.factor("sram_pages", "Ideal RMT", "Tofino-2") <= 2.2
        assert 1.7 <= report.factor("steps", "Ideal RMT", "Tofino-2") <= 2.2
