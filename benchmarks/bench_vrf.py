"""Extension experiment: VPN routing tables (paper §1 O3, idiom I5).

Routers carry hundreds of VRFs whose tables are individually small.
Per-VRF physical TCAM tables pay block-granularity fragmentation (a
50-entry VRF still burns one 512-entry block); idiom I5's tagged
coalescing packs them densely.  This bench quantifies how many VRFs a
Tofino-2-sized TCAM can carry under each rendering.
"""

import numpy as np

from _bench_utils import emit

from repro.algorithms import VrfRouter
from repro.analysis import Table
from repro.chip import TOFINO2, map_to_ideal_rmt
from repro.prefix import Fib, Prefix

VRF_COUNT = 96
PREFIXES_PER_VRF = 120


def build_router():
    rng = np.random.default_rng(23)
    router = VrfRouter(width=32, max_vrfs=128)
    for vrf_id in range(VRF_COUNT):
        fib = Fib(32)
        for value in rng.choice(1 << 24, size=PREFIXES_PER_VRF, replace=False):
            fib.insert(Prefix.from_bits(int(value), 24, 32),
                       int(rng.integers(0, 16)))
        router.add_vrf(vrf_id, fib)
    return router


def test_vrf_coalescing(benchmark):
    router = benchmark.pedantic(build_router, rounds=1, iterations=1)
    coalesced = map_to_ideal_rmt(router.coalesced_layout())
    separate = map_to_ideal_rmt(router.separate_layouts())

    blocks_per_vrf_sep = separate.tcam_blocks / VRF_COUNT
    blocks_per_vrf_coal = coalesced.tcam_blocks / VRF_COUNT
    max_vrfs_sep = int(TOFINO2.tcam_blocks / blocks_per_vrf_sep)
    max_vrfs_coal = int(TOFINO2.tcam_blocks / blocks_per_vrf_coal)

    table = Table(
        f"VRF rendering ({VRF_COUNT} VRFs x {PREFIXES_PER_VRF} prefixes)",
        ["Rendering", "TCAM blocks", "Blocks/VRF", "Max VRFs on Tofino-2"],
    )
    table.add_row("Separate per-VRF tables", separate.tcam_blocks,
                  f"{blocks_per_vrf_sep:.2f}", max_vrfs_sep)
    table.add_row("Coalesced with tags (I5)", coalesced.tcam_blocks,
                  f"{blocks_per_vrf_coal:.2f}", max_vrfs_coal)
    emit("vrf_coalescing", table.render())

    # Correctness spot-check: VRFs stay isolated.
    a0 = next(iter(router._vrfs[0]))[0]
    assert router.lookup(0, a0.value) == router._vrfs[0].lookup(a0.value)
    # The I5 claim: coalescing multiplies VRF capacity several-fold.
    assert separate.tcam_blocks == VRF_COUNT  # one block each, all waste
    assert coalesced.tcam_blocks < separate.tcam_blocks / 2
    assert max_vrfs_coal > 2 * max_vrfs_sep
