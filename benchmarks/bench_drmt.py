"""Extension experiment: the dRMT architecture (§2, Appendix A.1).

The paper expects its RMT results to carry over to dRMT because "RMT
is a stricter version of dRMT with additional access restrictions".
This bench maps every algorithm to both models and verifies the
containment: dRMT rounds <= ideal-RMT stages always, with large gaps
exactly for the memory-heavy schemes whose RMT stages exist only to
reach more memory (§8's RESAIL discussion).
"""

from _bench_utils import emit

from repro.analysis import Table
from repro.chip import map_to_drmt, map_to_ideal_rmt


def test_drmt_vs_rmt(benchmark, resail_v4, sail_v4, bsic_v6, mashup_v4,
                     hibst_v6, ltcam_v4, full_scale):
    algos = [resail_v4, mashup_v4, sail_v4, ltcam_v4, bsic_v6, hibst_v6]

    def build():
        return [(a.name, map_to_ideal_rmt(a.layout()), map_to_drmt(a.layout()))
                for a in algos]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = Table("Ideal RMT stages vs dRMT processor rounds",
                  ["Scheme", "RMT stages", "dRMT rounds", "Gap"])
    for name, rmt, drmt in rows:
        table.add_row(name, rmt.stages, drmt.stages, rmt.stages - drmt.stages)
    emit("drmt_vs_rmt", table.render())

    for name, rmt, drmt in rows:
        # The containment claim.
        assert drmt.stages <= rmt.stages, name
        # Memory totals are model-independent.
        assert drmt.sram_pages == rmt.sram_pages, name
        assert drmt.tcam_blocks == rmt.tcam_blocks, name

    by_name = {name: (rmt, drmt) for name, rmt, drmt in rows}
    # RESAIL's RMT stages are mostly memory-reach: big dRMT win.
    rmt, drmt = by_name[resail_v4.name]
    assert drmt.stages == 3
    if full_scale:
        assert rmt.stages >= 8
    # BSIC's stages are genuine dependent probes: little dRMT win.
    rmt, drmt = by_name[bsic_v6.name]
    assert rmt.stages - drmt.stages <= 2
