"""Figure 10: BSIC vs HI-BST scaling (IPv6, multiverse scaling).

The base AS131072-like database occupies one 3-bit universe; §7.2
replicates it into the others, scaling every BSIC table population
uniformly.  Paper frontiers: BSIC ideal ~630k prefixes, BSIC Tofino-2
~390k, HI-BST ~340k.
"""

from _bench_utils import emit

from repro.analysis import (
    Table,
    hibst_max_feasible,
    ipv6_max_feasible,
    ipv6_scaling_series,
    render_scaling_figure,
)
from repro.chip import map_to_ideal_rmt, map_to_tofino2

FACTORS = [1, 2, 3, 4, 6, 8]


def test_fig10_ipv6_scaling(benchmark, bsic_v6, fib_v6, scale, full_scale):
    base_layout = bsic_v6.layout()
    base_size = len(fib_v6)
    if not full_scale:
        # Normalize a reduced sample to full-table size so the frontier
        # numbers stay comparable to the paper's.
        base_layout = base_layout.scaled(193_060 / base_size)
        base_size = 193_060

    series = benchmark.pedantic(
        lambda: ipv6_scaling_series(base_layout, base_size, FACTORS),
        rounds=1, iterations=1,
    )
    table = Table(
        "Figure 10: BSIC vs HI-BST scaling (IPv6) - SRAM pages (feasible?)",
        ["DB size", "BSIC/ideal", "BSIC/Tofino-2", "HI-BST/ideal"],
    )
    for i, _factor in enumerate(FACTORS):
        def cell(name):
            point = series[name][i]
            return f"{point.sram_pages}{'' if point.feasible else ' (infeasible)'}"

        table.add_row(series["BSIC / Ideal RMT"][i].size,
                      cell("BSIC / Ideal RMT"),
                      cell("BSIC / Tofino-2"),
                      cell("HI-BST / Ideal RMT"))

    bsic_ideal = ipv6_max_feasible(base_layout, base_size, map_to_ideal_rmt)
    bsic_tofino = ipv6_max_feasible(base_layout, base_size, map_to_tofino2)
    hibst = hibst_max_feasible(map_to_ideal_rmt)
    frontier = (
        f"Max feasible IPv6 database: BSIC/ideal={bsic_ideal:,} "
        f"(paper ~630k), BSIC/Tofino-2={bsic_tofino:,} (paper ~390k), "
        f"HI-BST/ideal={hibst:,} (paper ~340k)"
    )
    chart = render_scaling_figure("Figure 10 (shape): SRAM pages vs size", series)
    emit("fig10_ipv6_scaling", table.render() + "\n" + frontier + "\n\n" + chart)

    # Shape claims: both BSIC instances out-scale HI-BST; Tofino-2's
    # doubled BST stages cost roughly half the ideal frontier.  (At
    # reduced bench scale the BST depth is unrealistically shallow, so
    # the Tofino-vs-ideal ordering is only asserted at full scale.)
    assert 320_000 <= hibst <= 360_000
    assert bsic_ideal > hibst
    if full_scale:
        assert bsic_tofino < bsic_ideal
        assert 450_000 <= bsic_ideal <= 900_000
        assert bsic_tofino > hibst * 0.9
