"""Figure 1: BGP routing table growth, 2003-2033.

Regenerates the growth series behind the paper's motivation: IPv4
doubling per decade (linear within the observed window), IPv6 doubling
every three years, with the 2033 projections of §1 (O1/O2).
"""

from _bench_utils import emit

from repro.analysis import Table
from repro.datasets import growth_series, ipv4_table_size, ipv6_table_size


def render_series():
    table = Table("Figure 1: BGP table size (routes)",
                  ["Year", "IPv4", "IPv6"])
    for point in growth_series(2003, 2033):
        if point.year % 5 == 0 or point.year == 2033:
            table.add_row(point.year, point.ipv4_routes, point.ipv6_routes)
    return table


def test_fig01_growth_series(benchmark):
    table = benchmark.pedantic(render_series, rounds=1, iterations=1)
    emit("fig01_growth", table.render())

    # O1: IPv4 ~930k today, ~2M by 2033 if doubling continues.
    assert ipv4_table_size(2023) == 930_000
    assert 1_800_000 <= ipv4_table_size(2033) <= 2_000_000
    # O2: IPv6 ~190k today, >=0.5M by 2033 even under the linear slowdown.
    assert ipv6_table_size(2023) == 190_000
    assert ipv6_table_size(2033, "linear") >= 500_000
