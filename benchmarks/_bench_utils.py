"""Helpers shared by the benchmark files (kept out of conftest so the
import works regardless of pytest's conftest handling).

``emit`` persists the human-readable table exactly as before; pass
``values``/``timings``/``registry`` and it also writes a ``.json``
sidecar next to the ``.txt`` so the bench trajectory is
machine-readable (CI uploads ``benchmarks/results/*.json`` as
artifacts).  Sidecar layout::

    {
      "bench": "<name>",
      "values": {...},     # deterministic numbers the bench asserts on
      "timings": {...},    # wall-clock measurements (non-deterministic)
      "metrics": {...},    # MetricsRegistry.snapshot(), if one was used
      "wall_timings": {...}  # registry.timings_snapshot(), ditto
    }

Only ``values`` and ``metrics`` are stable across same-seed runs;
anything wall-clock lives in the timing sections, mirroring the
determinism split in :mod:`repro.obs.registry`.
"""

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str, *, values=None, timings=None,
         registry=None) -> pathlib.Path:
    """Print a reproduced table and persist it under benchmarks/results/.

    Returns the path of the written ``.txt``.  When any of ``values``
    (deterministic result numbers), ``timings`` (wall-clock seconds),
    or ``registry`` (a :class:`repro.obs.MetricsRegistry`) is given, a
    ``<name>.json`` sidecar is written as well.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n")
    if values is not None or timings is not None or registry is not None:
        emit_json(name, values=values, timings=timings, registry=registry)
    return path


def emit_json(name: str, *, values=None, timings=None,
              registry=None) -> pathlib.Path:
    """Write the machine-readable sidecar; returns its path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    doc = {"bench": name}
    if values is not None:
        doc["values"] = values
    if timings is not None:
        doc["timings"] = timings
    if registry is not None:
        doc["metrics"] = registry.snapshot()
        doc["wall_timings"] = registry.timings_snapshot()
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True,
                               default=_jsonable) + "\n")
    return path


def _jsonable(value):
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=str)
    return str(value)


def bench_timings(benchmark) -> dict:
    """Wall-clock stats from a pytest-benchmark fixture, JSON-safe.

    Returns ``{}`` when the fixture has not run yet (or benchmarking
    is disabled), so callers can pass the result straight to ``emit``.
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return {}
    return {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "max_s": stats.max,
        "rounds": stats.rounds,
    }
