"""Helpers shared by the benchmark files (kept out of conftest so the
import works regardless of pytest's conftest handling)."""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a reproduced table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
