"""Serving concurrency: the coalescing frontend vs one-at-a-time.

The serving acceptance gate.  ``repro.cli.run_bench_serve`` drives the
same seeded Zipf workload two ways over one FIB:

* **sequential** — a single :class:`~repro.engine.BatchEngine` answers
  one request per call, the path a naive frontend would take;
* **coalesced** — closed-loop producers keep a window of requests
  outstanding against a :class:`~repro.server.LookupServer`, whose
  coalescer packs them into worker-sized batches.

The coalesced side must reach at least **2x** the sequential
lookups/sec.  Emits the ``serve_concurrency`` JSON sidecar
(``benchmarks/results/serve_concurrency.json``) that CI gates on,
mirroring the engine's 3x interpreter gate in ``bench_throughput.py``.

A third, fault-injected pass replays the coalesced workload under a
scripted :class:`~repro.chaos.ChaosPlan` that kills workers mid-run;
the supervisor restarts them, the sidecar records the recovery time,
and the gate requires faulted throughput >= **0.6x** fault-free.
"""

import os

from _bench_utils import bench_timings, emit

from repro.analysis import Table
from repro.cli import run_bench_serve
from repro.datasets import synthesize_as65000
from repro.obs import MetricsRegistry

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
N_REQUESTS = max(8_000, int(20_000 * SCALE))
FIB_SCALE = max(0.001, 0.002 * SCALE)


def test_coalesced_serving_vs_sequential(benchmark):
    """The serving gate: coalesced concurrent throughput >= 2x the
    sequential one-request-at-a-time path, identical Zipf workload."""
    fib = synthesize_as65000(scale=FIB_SCALE)
    registry = MetricsRegistry()

    # Untimed warm-up: first-touch costs (imports, plan compilation,
    # thread spawn) otherwise land inside the timed concurrent section
    # and make the short smoke-scale run noisy around the gate.
    run_bench_serve(fib, "resail", requests=512, seed=1, faulted=False)

    doc = benchmark.pedantic(
        lambda: run_bench_serve(fib, "resail", requests=N_REQUESTS,
                                seed=29, registry=registry),
        rounds=1, iterations=1)
    values, timings = doc["values"], doc["timings"]
    speedup = timings["speedup_x"]
    threshold = values["speedup_threshold_x"]

    table = Table("Coalesced serving vs sequential lookups",
                  ["Serving path", "Lookups/s", "vs sequential"])
    table.add_row("sequential (one request at a time)",
                  f"{timings['sequential_lookups_per_s']:,.0f}", "1.0x")
    table.add_row(
        f"coalesced ({values['workers']} workers, "
        f"{values['producers']} producers, window {values['window']})",
        f"{timings['concurrent_lookups_per_s']:,.0f}", f"{speedup:.1f}x")
    recovery = timings.get("recovery_s")
    table.add_row(
        f"faulted ({values['faulted_worker_deaths']} worker kill(s), "
        f"recovery {recovery * 1e3:.1f} ms)" if recovery is not None
        else f"faulted ({values['faulted_worker_deaths']} worker kill(s))",
        f"{timings['faulted_lookups_per_s']:,.0f}",
        f"{timings['sequential_s'] / timings['faulted_s']:.1f}x")
    emit("serve_concurrency", table.render(),
         values=values,
         timings={**timings, "benchmark": bench_timings(benchmark)},
         registry=registry)

    # The sidecar carries the per-phase latency decomposition the
    # trajectory tracker regression-checks (request p50/p99/p999 at
    # minimum — the SLO windows observed every request).
    latency = timings["latency"]["concurrent"]
    assert latency["request"]["p50_s"] is not None
    assert latency["request"]["p99_s"] is not None
    assert latency["request"]["p999_s"] is not None

    # The server really batched: coalesced batches outnumber nothing —
    # the batch counter moved and every request was answered.
    counters = registry.snapshot()["counters"]
    batches = sum(counters.get("repro_server_batches_total", {}).values())
    served = counters.get("repro_server_addresses_total", {}).get(
        '{server="bench-serve"}', 0)
    assert batches > 0
    assert served == values["requests"]
    # The faulted replay served the whole workload too.
    faulted_served = counters.get("repro_server_addresses_total", {}).get(
        '{server="bench-serve-faulted"}', 0)
    assert faulted_served == values["requests"]
    # The acceptance criterion: >= 2x the sequential path.
    assert speedup >= threshold, (
        f"coalesced serving only {speedup:.2f}x over sequential")
    # The robustness criterion: worker kills landed, the supervisor
    # brought every worker back, and throughput under faults stayed
    # within 0.6x of the fault-free coalesced run.
    assert values["faulted_worker_deaths"] >= 1, \
        "chaos script never killed a worker"
    assert (values["faulted_worker_restarts"]
            >= values["faulted_worker_deaths"]), (
        f"{values['faulted_worker_deaths']} death(s) but only "
        f"{values['faulted_worker_restarts']} restart(s)")
    faulted_x = timings["faulted_throughput_x"]
    assert faulted_x >= values["faulted_threshold_x"], (
        f"faulted throughput only {faulted_x:.2f}x of fault-free "
        f"(threshold {values['faulted_threshold_x']:.1f}x)")
