"""Artifact warm-start benchmark: catalog load vs from-scratch build.

The persistent artifact store (:mod:`repro.artifact`) exists so a
serving restart does not pay the full per-prefix build again: the
snapshot is mmapped, its state arrays adopted zero-copy, and the
persisted vector views re-frozen through an empty log replay instead
of re-flattening every table.  This bench times both paths over the
same synthetic table and gates the ratio:

* **cold** — ``Resail(fib)`` (the per-prefix build loop) plus the
  scalar plan and vector plan compiles;
* **warm** — ``ArtifactCatalog.load`` (mmap + full checksum
  verification), ``state_import`` (direct cell/bitmap adoption), and
  the same two compiles (view adoption makes the vector one cheap).

The gate asserts warm start ≥ 5x faster than cold, and that both
paths answer a probe batch identically — a warm start that drifts is
worse than a slow one.  The table is floored at a scale where the
build dominates the fixed costs (checksumming + compile), because at
toy sizes both paths are all fixed cost and the ratio measures
nothing.
"""

import os
import tempfile
import time

from _bench_utils import emit

from repro.algorithms import Resail
from repro.analysis import Table
from repro.artifact import ArtifactCatalog
from repro.datasets import synthesize_as65000, uniform_addresses

#: The CI gate: artifact load must beat build+compile by this factor.
SPEEDUP_THRESHOLD_X = 5.0

#: Never shrink the table below this scale — the warm path's fixed
#: costs (checksums, compiles) would dominate both sides and the
#: ratio would stop measuring the build loop the store exists to skip.
MIN_SCALE = 0.15

SCALE = max(MIN_SCALE, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))


def test_coldstart_warm_start_speedup():
    fib = synthesize_as65000(scale=SCALE)

    start = time.perf_counter()
    algo = Resail(fib)
    plan = algo.compile_plan()
    vplan = algo.compile_vector_plan(plan)
    cold_s = time.perf_counter() - start

    probes = uniform_addresses(32, 4096, seed=11)
    cold_scalar = list(plan.lookup_batch(probes))
    cold_vector = vplan.lookup_batch(probes).tolist()

    with tempfile.TemporaryDirectory() as root:
        catalog = ArtifactCatalog(root)
        start = time.perf_counter()
        version = catalog.save("coldstart", algo, fib, vector_plan=vplan)
        save_s = time.perf_counter() - start
        size_bytes = os.path.getsize(catalog.path("coldstart", version))

        start = time.perf_counter()
        loaded = catalog.load("coldstart")
        warm_algo = loaded.algorithm()
        warm_plan = warm_algo.compile_plan()
        warm_vplan = warm_algo.compile_vector_plan(warm_plan)
        warm_s = time.perf_counter() - start

        warm_scalar = list(warm_plan.lookup_batch(probes))
        warm_vector = warm_vplan.lookup_batch(probes).tolist()

    assert warm_scalar == cold_scalar, \
        "warm-start scalar plan drifted from the cold build"
    assert warm_vector == cold_vector, \
        "warm-start vector plan drifted from the cold build"

    speedup = cold_s / warm_s
    table = Table(
        f"Artifact cold start vs warm start (RESAIL, scale {SCALE:g}, "
        f"{len(fib):,} prefixes)",
        ["path", "seconds", "notes"])
    table.add_row("cold build+compile", f"{cold_s:.3f}",
                  "Resail(fib) + plan + vector plan")
    table.add_row("artifact save", f"{save_s:.3f}",
                   f"{size_bytes:,} bytes")
    table.add_row("warm load+compile", f"{warm_s:.3f}",
                   "mmap + checksums + state import + compiles")
    table.add_row("speedup", f"{speedup:.2f}x",
                   f"gate: >= {SPEEDUP_THRESHOLD_X:g}x")
    emit("coldstart", table.render(),
         values={
             "algorithm": "resail",
             "scale": SCALE,
             "prefixes": len(fib),
             "snapshot_bytes": size_bytes,
             "probes": len(probes),
             "answers_bit_exact": True,
             "speedup_threshold_x": SPEEDUP_THRESHOLD_X,
         },
         timings={
             "cold_s": cold_s,
             "save_s": save_s,
             "warm_s": warm_s,
             "speedup_x": speedup,
         })

    assert speedup >= SPEEDUP_THRESHOLD_X, (
        f"warm start only {speedup:.2f}x faster than cold build "
        f"(gate {SPEEDUP_THRESHOLD_X:g}x): cold={cold_s:.3f}s "
        f"warm={warm_s:.3f}s")
