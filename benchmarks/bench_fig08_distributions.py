"""Figure 8: IPv4 and IPv6 prefix-length distributions.

Regenerates the histograms of the synthetic AS65000/AS131072 databases
and checks the paper's observations P1 (major/minor spikes), P2 (few
IPv4 prefixes shorter than 13 bits), and P3 (most IPv6 prefixes longer
than 28 bits).
"""

from _bench_utils import emit

from repro.analysis import Table
from repro.prefix import LengthDistribution


def build_distribution(fib):
    return LengthDistribution.from_prefixes(fib.prefixes(), fib.width)


def render(dist, family):
    table = Table(f"Figure 8 ({family}): prefix length distribution",
                  ["Length", "Count", "Share"])
    for length, count in dist.to_dict().items():
        table.add_row(length, count, f"{count / dist.total:.2%}")
    return table


def test_fig08_ipv4_distribution(benchmark, fib_v4):
    dist = benchmark.pedantic(build_distribution, args=(fib_v4,),
                              rounds=1, iterations=1)
    emit("fig08_ipv4", render(dist, "IPv4").render())
    assert dist.major_spike() == 24  # P1 major
    assert set(dist.spikes()) == {16, 20, 22, 24}  # P1 minors
    assert dist.count_shorter_than(13) / dist.total < 0.001  # P2


def test_fig08_ipv6_distribution(benchmark, fib_v6):
    dist = benchmark.pedantic(build_distribution, args=(fib_v6,),
                              rounds=1, iterations=1)
    emit("fig08_ipv6", render(dist, "IPv6").render())
    assert dist.major_spike() == 48  # P1 major
    assert set(dist.spikes()) == {28, 32, 36, 40, 44, 48}  # P1 minors
    assert dist.fraction_longer_than(27) > 0.9  # P3
