"""Table 10: predictive accuracy of the CRAM model for RESAIL (IPv4).

Paper rows (TCAM blocks / SRAM pages / steps-stages):
CRAM 1.14 / 549.12 / 2 -> ideal RMT 2 / 556 / 9 -> Tofino-2 17 / 750 / 16.
"""

import pytest

from _bench_utils import emit

from repro.analysis import Table, accuracy_report


def test_tab10_resail_accuracy(benchmark, resail_v4, full_scale):
    report = benchmark.pedantic(lambda: accuracy_report(resail_v4),
                                rounds=1, iterations=1)
    table = Table("Table 10: CRAM predictive accuracy, RESAIL (IPv4)",
                  ["Model", "TCAM Blocks", "SRAM Pages", "Steps (Stages)"])
    for row in report.rows:
        table.add_row(row.model, row.tcam_blocks, row.sram_pages, row.steps)
    emit("tab10_resail_accuracy", table.render())

    cram, ideal, tofino = report.rows
    assert cram.steps == 2
    if full_scale:
        # CRAM row: paper 1.14 blocks / 549.12 pages.
        assert cram.tcam_blocks == pytest.approx(1.14, abs=0.1)
        assert cram.sram_pages == pytest.approx(549, rel=0.02)
        # Ideal RMT: small rounding on memory, stages jump to 9 because
        # RMT stages bundle memory with compute (§8).
        assert ideal.tcam_blocks == 2
        assert ideal.steps == 9  # stages, in the chip rows
        assert abs(ideal.sram_pages - cram.sram_pages) < 20
        # Tofino-2: additive TCAM for bitmask tables; multiplicative
        # SRAM/stage growth from the 50% utilization ceiling.
        assert tofino.tcam_blocks > ideal.tcam_blocks + 5
        assert 1.2 <= report.factor("sram_pages", "Ideal RMT", "Tofino-2") <= 1.8
        assert 1.3 <= report.factor("steps", "Ideal RMT", "Tofino-2") <= 2.0
