"""Extension experiment: route aggregation before lookup (paper §1 O4).

O4: minimizing forwarding memory makes room for other features.  ORTC
aggregation rewrites the FIB into the minimal behaviourally-identical
prefix set; every lookup scheme then scales with the smaller table.
This bench measures the reduction on the AS65000-like table and its
knock-on effect on the chip mappings — including the logical TCAM's
capacity shortfall shrinking.
"""

from _bench_utils import emit

from repro.algorithms import logical_tcam_layout
from repro.algorithms.resail import resail_layout_from_counts
from repro.analysis import Table
from repro.chip import map_to_ideal_rmt
from repro.prefix import LengthDistribution, aggregate, aggregation_ratio


def test_aggregation_shrinks_everything(benchmark, fib_v4, full_scale):
    result = benchmark.pedantic(lambda: aggregate(fib_v4),
                                rounds=1, iterations=1)
    ratio = aggregation_ratio(fib_v4, result)

    # Behavioural equivalence on a sample (exhaustive in tests/).
    from repro.datasets import mixed_addresses

    for address in mixed_addresses(fib_v4, 500, seed=61):
        assert result.lookup(address) == fib_v4.lookup(address)

    before_dist = LengthDistribution.from_prefixes(fib_v4.prefixes(), 32)
    after_dist = LengthDistribution.from_prefixes(result.fib.prefixes(), 32)

    def resail_pages(dist):
        longs = dist.count_longer_than(24)
        hash_entries = sum(dist.count(i) for i in range(13, 25))
        for length in range(13):
            hash_entries += dist.count(length) * (1 << (13 - length))
        return map_to_ideal_rmt(
            resail_layout_from_counts(longs, hash_entries)
        ).sram_pages

    ltcam_before = map_to_ideal_rmt(logical_tcam_layout(len(fib_v4), 32))
    ltcam_after = map_to_ideal_rmt(logical_tcam_layout(len(result), 32))

    table = Table("ORTC aggregation on the AS65000-like table",
                  ["Quantity", "Before", "After", "Change"])
    table.add_row("Prefixes", len(fib_v4), len(result), f"/{ratio:.2f}")
    table.add_row("RESAIL SRAM pages (ideal RMT)",
                  resail_pages(before_dist), resail_pages(after_dist), "-")
    table.add_row("Logical TCAM blocks", ltcam_before.tcam_blocks,
                  ltcam_after.tcam_blocks, "-")
    table.add_row("Discard (null) routes emitted",
                  None, int(result.used_discard), "-")
    emit("aggregation", table.render())

    assert len(result) < len(fib_v4)
    assert ltcam_after.tcam_blocks < ltcam_before.tcam_blocks
    if full_scale:
        # Our synthetic table aggregates by ~1.6x; real BGP tables
        # aggregate less (more hop diversity) but the direction holds.
        assert ratio > 1.2
        assert resail_pages(after_dist) < resail_pages(before_dist)