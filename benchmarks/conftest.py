"""Shared benchmark fixtures: full-scale databases and built algorithms.

Each benchmark file regenerates one table or figure from the paper's
evaluation (see DESIGN.md's per-experiment index).  The reproduced
tables are printed and also written to ``benchmarks/results/`` so a
``pytest benchmarks/ --benchmark-only`` run leaves the full set of
artifacts behind.

Set ``REPRO_BENCH_SCALE`` (default 1.0) to run against smaller
synthetic databases for a quick smoke pass; paper-comparison
assertions relax automatically below full scale.
"""

import os

import pytest

from _bench_utils import emit  # noqa: F401  (re-exported for bench files)

from repro.algorithms import (
    Bsic,
    Dxr,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Resail,
    Sail,
)
from repro.datasets import synthesize_as65000, synthesize_as131072

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FULL_SCALE = SCALE >= 0.999


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def full_scale():
    return FULL_SCALE


@pytest.fixture(scope="session")
def fib_v4():
    return synthesize_as65000(scale=SCALE)


@pytest.fixture(scope="session")
def fib_v6():
    return synthesize_as131072(scale=SCALE)


# ---------------------------------------------------------------------------
# Built algorithms, shared across benchmark files
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def resail_v4(fib_v4):
    return Resail(fib_v4, min_bmp=13)


@pytest.fixture(scope="session")
def bsic_v4(fib_v4):
    return Bsic(fib_v4, k=16)


@pytest.fixture(scope="session")
def mashup_v4(fib_v4):
    return Mashup(fib_v4, (16, 4, 4, 8))


@pytest.fixture(scope="session")
def sail_v4(fib_v4):
    return Sail(fib_v4)


@pytest.fixture(scope="session")
def dxr_v4(fib_v4):
    return Dxr(fib_v4, k=16)


@pytest.fixture(scope="session")
def ltcam_v4(fib_v4):
    return LogicalTcam(fib_v4)


@pytest.fixture(scope="session")
def bsic_v6(fib_v6):
    return Bsic(fib_v6, k=24)


@pytest.fixture(scope="session")
def mashup_v6(fib_v6):
    return Mashup(fib_v6, (20, 12, 16, 16))


@pytest.fixture(scope="session")
def hibst_v6(fib_v6):
    return HiBst(fib_v6)


@pytest.fixture(scope="session")
def ltcam_v6(fib_v6):
    return LogicalTcam(fib_v6)
