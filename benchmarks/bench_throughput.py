"""Lookup throughput: native simulators vs the batch engine.

Not a paper table — the paper measures hardware resources, not Python
speed — but the perf trajectory of the serving path.  Three benches:

* ``test_ipv4_lookup_throughput`` / ``test_ipv6_lookup_throughput``
  sweep every behavioural simulator (plus the reference trie) over one
  mixed workload and record lookups/sec per scheme.
* ``test_engine_vs_interpreter_throughput`` is the engine acceptance
  gate: the compiled plan (``repro.core.plan``) must serve at least
  **3x** the lookups/sec of the per-packet CRAM interpreter on the
  same FIB, and the cached engine is measured on a Zipf-skewed
  workload on top.
* ``test_vector_vs_plan_throughput`` is the lane-compiler acceptance
  gate: every scheme lowers fully, so the vector plan
  (``repro.core.vector``) must serve at least **3x** the lookups/sec
  of the scalar compiled plan on all nine, with identical answers —
  and the fused schedule must never regress the unfused one.

Every bench emits a machine-readable JSON sidecar via
``_bench_utils.emit`` (``benchmarks/results/throughput_*.json``):
deterministic numbers (hit counts, checksums, cache hit/miss counts)
in ``values``, wall-clock rates in ``timings``.
"""

import os
import time

from _bench_utils import bench_timings, emit

from repro.algorithms import (
    Bsic,
    Dxr,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Poptrie,
    Resail,
    Sail,
)
from repro.analysis import Table
from repro.core import compile_plan, compile_vector_plan
from repro.datasets import (
    mixed_addresses,
    skewed_addresses,
    synthesize_as65000,
    synthesize_as131072,
)
from repro.engine import BatchEngine

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
N_ADDRESSES = max(400, int(2_000 * SCALE))
#: The interpreter is slow by design (it re-derives the schedule per
#: packet); a modest probe count keeps the bench snappy at any scale.
N_INTERP = max(60, int(200 * SCALE))

V4_MAKERS = [
    ("sail", lambda fib: Sail(fib)),
    ("resail", lambda fib: Resail(fib, min_bmp=13)),
    ("bsic", lambda fib: Bsic(fib, k=16)),
    ("dxr", lambda fib: Dxr(fib, k=16)),
    ("multibit", lambda fib: MultibitTrie(fib, [16, 4, 4, 8])),
    ("mashup", lambda fib: Mashup(fib)),
    ("poptrie", lambda fib: Poptrie(fib, dp_bits=16)),
    ("hibst", lambda fib: HiBst(fib)),
    ("ltcam", lambda fib: LogicalTcam(fib)),
]

V6_MAKERS = [
    ("bsic", lambda fib: Bsic(fib, k=24)),
    ("mashup", lambda fib: Mashup(fib)),
    ("hibst", lambda fib: HiBst(fib)),
]


@pytest.fixture(scope="module")
def small_v4():
    fib = synthesize_as65000(scale=0.01)
    return fib, mixed_addresses(fib, N_ADDRESSES, seed=21)


@pytest.fixture(scope="module")
def small_v6():
    fib = synthesize_as131072(scale=0.05)
    return fib, mixed_addresses(fib, N_ADDRESSES, seed=22)


def run_lookups(lookup, addresses):
    total = 0
    for address in addresses:
        if lookup(address) is not None:
            total += 1
    return total


def _sweep(fib, addresses, makers):
    """(hits, rates): per-scheme hit counts and native lookups/sec."""
    hits = {}
    rates = {}
    for name, maker in makers:
        algo = maker(fib)
        start = time.perf_counter()
        hits[name] = run_lookups(algo.lookup, addresses)
        rates[name] = len(addresses) / (time.perf_counter() - start)
    start = time.perf_counter()
    hits["trie"] = run_lookups(fib.lookup, addresses)
    rates["trie"] = len(addresses) / (time.perf_counter() - start)
    return hits, rates


def _emit_sweep(name, title, hits, rates, benchmark):
    table = Table(title, ["Scheme", "Lookups/s", "Hits"])
    for scheme, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        table.add_row(scheme, f"{rate:,.0f}", str(hits[scheme]))
    emit(name, table.render(),
         values={"addresses": N_ADDRESSES, "hits": hits},
         timings={"lookups_per_s": rates,
                  "benchmark": bench_timings(benchmark)})


def test_ipv4_lookup_throughput(benchmark, small_v4):
    fib, addresses = small_v4
    result = benchmark.pedantic(
        lambda: _sweep(fib, addresses, V4_MAKERS), rounds=1, iterations=1)
    hits, rates = result
    _emit_sweep("throughput_ipv4",
                f"IPv4 native lookup throughput ({N_ADDRESSES} addresses)",
                hits, rates, benchmark)
    # Every simulator answers the same workload identically.
    assert all(h == hits["trie"] for h in hits.values())
    assert hits["trie"] > 0


def test_ipv6_lookup_throughput(benchmark, small_v6):
    fib, addresses = small_v6
    result = benchmark.pedantic(
        lambda: _sweep(fib, addresses, V6_MAKERS), rounds=1, iterations=1)
    hits, rates = result
    _emit_sweep("throughput_ipv6",
                f"IPv6 native lookup throughput ({N_ADDRESSES} addresses)",
                hits, rates, benchmark)
    assert all(h == hits["trie"] for h in hits.values())
    assert hits["trie"] > 0


def test_engine_vs_interpreter_throughput(benchmark, small_v4):
    """The engine acceptance gate: compiled plan >= 3x the per-packet
    CRAM interpreter on the same FIB, recorded in a JSON sidecar."""
    fib, addresses = small_v4
    algo = Resail(fib, min_bmp=13)
    plan = compile_plan(algo)
    skewed = skewed_addresses(fib, N_ADDRESSES, seed=23)

    def run():
        # Per-packet interpreter dispatch: the pre-engine serving path.
        start = time.perf_counter()
        for address in addresses[:N_INTERP]:
            algo.cram_lookup(address)
        interp_rate = N_INTERP / (time.perf_counter() - start)
        # Compiled plan, batched.
        out = plan.lookup_batch(addresses)  # warm
        rounds = 3
        start = time.perf_counter()
        for _ in range(rounds):
            out = plan.lookup_batch(addresses, out=[])
        plan_rate = rounds * len(addresses) / (time.perf_counter() - start)
        # Engine with the skew-aware cache on a Zipf workload.
        engine = BatchEngine(algo, cache_size=1024, name="bench")
        engine.lookup_batch(skewed)  # warm the cache with real traffic
        start = time.perf_counter()
        served = engine.lookup_batch(skewed)
        engine_rate = len(skewed) / (time.perf_counter() - start)
        checksum = sum(hop for hop in out if hop is not None)
        # A cache hit must answer exactly like the compiled plan.
        assert served == [plan.lookup(a) for a in skewed]
        return interp_rate, plan_rate, engine_rate, checksum, engine

    interp_rate, plan_rate, engine_rate, checksum, engine = benchmark.pedantic(
        run, rounds=1, iterations=1)
    speedup = plan_rate / interp_rate
    cache = engine.cache.stats

    table = Table("Batched engine vs per-packet interpreter",
                  ["Serving path", "Lookups/s", "vs interpreter"])
    table.add_row("CRAM interpreter (per packet)", f"{interp_rate:,.0f}", "1.0x")
    table.add_row("compiled plan (batched)", f"{plan_rate:,.0f}",
                  f"{speedup:.1f}x")
    table.add_row("engine + FIB cache (skewed)", f"{engine_rate:,.0f}",
                  f"{engine_rate / interp_rate:.1f}x")
    emit("throughput_engine", table.render(),
         values={
             "addresses": len(addresses),
             "interpreter_addresses": N_INTERP,
             "plan_hop_checksum": checksum,
             "plan_steps": len(plan),
             "speedup_threshold_x": 3.0,
             "cache": {"hits": cache.hits, "misses": cache.misses,
                       "hit_ratio": round(engine.cache_hit_ratio(), 4)},
         },
         timings={
             "interpreter_lookups_per_s": interp_rate,
             "plan_lookups_per_s": plan_rate,
             "engine_cached_lookups_per_s": engine_rate,
             "speedup_x": speedup,
             "benchmark": bench_timings(benchmark),
         })

    # Correctness before speed: the plan answers like the trie oracle.
    sample = addresses[:: max(1, len(addresses) // 64)]
    assert [plan.lookup(a) for a in sample] == [fib.lookup(a) for a in sample]
    # The acceptance criterion: >= 3x the per-packet interpreter.
    assert speedup >= 3.0, f"plan only {speedup:.2f}x over the interpreter"


#: Fused-vs-unfused smoke threshold: identical kernels either way, so
#: fusion must never *cost* throughput.  A genuine fusion regression
#: shows up far below this; 0.90 is the noise floor of timing
#: sub-millisecond batches on a shared CI host.
FUSION_THRESHOLD = 0.90
#: Timing samples per measured arm; every rate is the *best* sample
#: (min-of-N), which rejects scheduler hiccups a single aggregate
#: timing loop folds straight into the gate.
TIMING_ROUNDS = 5


def _best_rate(fn, n, rounds=TIMING_ROUNDS, calls=2):
    """Lookups/sec from the fastest of ``rounds`` samples, each timing
    ``calls`` back-to-back invocations (sub-millisecond batches are
    too short to time singly on a noisy host)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - start)
    return calls * n / best


def _ab_ratio(fn_a, fn_b, rounds=TIMING_ROUNDS, calls=2):
    """best(A)/best(B) with the samples *interleaved*: A then B each
    round, so clock drift and frequency scaling hit both arms alike
    instead of biasing whichever ran second."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(calls):
            fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(calls):
            fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_b / best_a


def test_vector_vs_plan_throughput(benchmark, small_v4):
    """The lane-compiler acceptance gate: every scheme now lowers
    fully, so the vector plan must serve >= 3x the scalar compiled
    plan on ALL NINE, with identical answers — and the fusion A-B
    smoke on top: the fused schedule never regresses the unfused one
    (min-of-N interleaved timings).  Recorded in a JSON sidecar."""
    fib, addresses = small_v4
    # The gate measures *batch* throughput: at the CI bench scale the
    # shared workload shrinks to a few hundred addresses, where kernel
    # dispatch overhead (not lane work) dominates the deep-probe
    # schemes.  Pin this bench to a production-sized batch instead.
    if len(addresses) < 2_000:
        addresses = mixed_addresses(fib, 2_000, seed=21)
    gated = [(name, maker(fib)) for name, maker in V4_MAKERS]
    n = len(addresses)

    def run():
        rows = {}
        fusion = {}
        for name, algo in gated:
            plan = compile_plan(algo)
            vplan = compile_vector_plan(algo, plan=plan)
            assert vplan.fully_lowered, vplan.describe()
            expected = plan.lookup_batch(addresses)  # warm + reference
            got = vplan.lookup_batch_hops(addresses)  # warm
            assert got == expected, f"{name}: vector answers diverge"
            vector_rate = _best_rate(
                lambda: vplan.lookup_batch(addresses), n)
            # The gated speedup is an *interleaved* A/B ratio (like the
            # fusion smoke below) so clock drift between the two timing
            # windows can't push a scheme across the 3x line; the
            # reported plan rate is derived from it.
            speedup = _ab_ratio(
                lambda: vplan.lookup_batch(addresses),
                lambda: plan.lookup_batch(addresses, out=[]),
                rounds=7, calls=1)
            rows[name] = (vector_rate / speedup, vector_rate, speedup,
                          sum(hop for hop in expected if hop is not None))
            # Fusion A-B: same kernels, one dispatch loop vs many.
            unfused = compile_vector_plan(algo, plan=plan, fuse=False)
            assert unfused.lookup_batch_hops(addresses) == expected
            fusion[name] = _ab_ratio(
                lambda: vplan.lookup_batch(addresses),
                lambda: unfused.lookup_batch(addresses),
                rounds=9, calls=3)
        return rows, fusion

    rows, fusion = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = {name: speedup
                for name, (_p, _v, speedup, _c) in rows.items()}

    table = Table("Vector lane kernels vs scalar compiled plan",
                  ["Scheme", "Plan lookups/s", "Vector lookups/s", "Speedup",
                   "Fused/unfused"])
    for name, (plan_rate, vector_rate, speedup, _checksum) in sorted(
            rows.items(), key=lambda kv: -speedups[kv[0]]):
        table.add_row(name, f"{plan_rate:,.0f}", f"{vector_rate:,.0f}",
                      f"{speedup:.1f}x", f"{fusion[name]:.2f}x")
    emit("throughput_vector", table.render(),
         values={
             "addresses": len(addresses),
             "speedup_threshold_x": 3.0,
             "fusion_threshold_x": FUSION_THRESHOLD,
             "hop_checksums": {name: checksum
                               for name, (_p, _v, _s, checksum)
                               in rows.items()},
         },
         timings={
             "plan_lookups_per_s": {name: p for name, (p, _v, _s, _c)
                                    in rows.items()},
             "vector_lookups_per_s": {name: v for name, (_p, v, _s, _c)
                                      in rows.items()},
             "speedup_x": speedups,
             "fusion_speedup_x": fusion,
             "benchmark": bench_timings(benchmark),
         })

    for name, speedup in speedups.items():
        assert speedup >= 3.0, \
            f"{name}: vector only {speedup:.2f}x over the scalar plan"
    for name, ab in fusion.items():
        assert ab >= FUSION_THRESHOLD, \
            f"{name}: fused schedule {ab:.2f}x the unfused one"
