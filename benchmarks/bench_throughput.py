"""Lookup throughput of the behavioural simulators (extra experiment).

Not a paper table — the paper measures hardware resources, not Python
speed — but a useful regression guard for the simulators themselves.
Uses a reduced database so pytest-benchmark can run multiple rounds.
"""

import pytest

from repro.algorithms import (
    Bsic,
    Dxr,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Poptrie,
    Resail,
    Sail,
)
from repro.datasets import mixed_addresses, synthesize_as65000, synthesize_as131072

N_ADDRESSES = 2_000


@pytest.fixture(scope="module")
def small_v4():
    fib = synthesize_as65000(scale=0.01)
    return fib, mixed_addresses(fib, N_ADDRESSES, seed=21)


@pytest.fixture(scope="module")
def small_v6():
    fib = synthesize_as131072(scale=0.05)
    return fib, mixed_addresses(fib, N_ADDRESSES, seed=22)


def run_lookups(algo, addresses):
    lookup = algo.lookup
    total = 0
    for address in addresses:
        if lookup(address) is not None:
            total += 1
    return total


@pytest.mark.parametrize("maker", [
    pytest.param(lambda fib: Sail(fib), id="sail"),
    pytest.param(lambda fib: Resail(fib, min_bmp=13), id="resail"),
    pytest.param(lambda fib: Bsic(fib, k=16), id="bsic"),
    pytest.param(lambda fib: Dxr(fib, k=16), id="dxr"),
    pytest.param(lambda fib: MultibitTrie(fib, [16, 4, 4, 8]), id="multibit"),
    pytest.param(lambda fib: Mashup(fib), id="mashup"),
    pytest.param(lambda fib: Poptrie(fib, dp_bits=16), id="poptrie"),
    pytest.param(lambda fib: HiBst(fib), id="hibst"),
    pytest.param(lambda fib: LogicalTcam(fib), id="ltcam"),
])
def test_ipv4_lookup_throughput(benchmark, small_v4, maker):
    fib, addresses = small_v4
    algo = maker(fib)
    hits = benchmark(run_lookups, algo, addresses)
    assert hits > 0


@pytest.mark.parametrize("maker", [
    pytest.param(lambda fib: Bsic(fib, k=24), id="bsic"),
    pytest.param(lambda fib: Mashup(fib), id="mashup"),
    pytest.param(lambda fib: HiBst(fib), id="hibst"),
])
def test_ipv6_lookup_throughput(benchmark, small_v6, maker):
    fib, addresses = small_v6
    algo = maker(fib)
    hits = benchmark(run_lookups, algo, addresses)
    assert hits > 0


def test_reference_trie_throughput(benchmark, small_v4):
    fib, addresses = small_v4
    hits = benchmark(run_lookups, fib, addresses)
    assert hits > 0
