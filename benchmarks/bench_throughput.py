"""Lookup throughput: native simulators vs the batch engine.

Not a paper table — the paper measures hardware resources, not Python
speed — but the perf trajectory of the serving path.  Three benches:

* ``test_ipv4_lookup_throughput`` / ``test_ipv6_lookup_throughput``
  sweep every behavioural simulator (plus the reference trie) over one
  mixed workload and record lookups/sec per scheme.
* ``test_engine_vs_interpreter_throughput`` is the engine acceptance
  gate: the compiled plan (``repro.core.plan``) must serve at least
  **3x** the lookups/sec of the per-packet CRAM interpreter on the
  same FIB, and the cached engine is measured on a Zipf-skewed
  workload on top.
* ``test_vector_vs_plan_throughput`` is the lane-compiler acceptance
  gate: for the fully-lowered schemes (SAIL, RESAIL, DXR) the vector
  plan (``repro.core.vector``) must serve at least **3x** the
  lookups/sec of the scalar compiled plan, with identical answers.

Every bench emits a machine-readable JSON sidecar via
``_bench_utils.emit`` (``benchmarks/results/throughput_*.json``):
deterministic numbers (hit counts, checksums, cache hit/miss counts)
in ``values``, wall-clock rates in ``timings``.
"""

import os
import time

from _bench_utils import bench_timings, emit

from repro.algorithms import (
    Bsic,
    Dxr,
    HiBst,
    LogicalTcam,
    Mashup,
    MultibitTrie,
    Poptrie,
    Resail,
    Sail,
)
from repro.analysis import Table
from repro.core import compile_plan, compile_vector_plan
from repro.datasets import (
    mixed_addresses,
    skewed_addresses,
    synthesize_as65000,
    synthesize_as131072,
)
from repro.engine import BatchEngine

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
N_ADDRESSES = max(400, int(2_000 * SCALE))
#: The interpreter is slow by design (it re-derives the schedule per
#: packet); a modest probe count keeps the bench snappy at any scale.
N_INTERP = max(60, int(200 * SCALE))

V4_MAKERS = [
    ("sail", lambda fib: Sail(fib)),
    ("resail", lambda fib: Resail(fib, min_bmp=13)),
    ("bsic", lambda fib: Bsic(fib, k=16)),
    ("dxr", lambda fib: Dxr(fib, k=16)),
    ("multibit", lambda fib: MultibitTrie(fib, [16, 4, 4, 8])),
    ("mashup", lambda fib: Mashup(fib)),
    ("poptrie", lambda fib: Poptrie(fib, dp_bits=16)),
    ("hibst", lambda fib: HiBst(fib)),
    ("ltcam", lambda fib: LogicalTcam(fib)),
]

V6_MAKERS = [
    ("bsic", lambda fib: Bsic(fib, k=24)),
    ("mashup", lambda fib: Mashup(fib)),
    ("hibst", lambda fib: HiBst(fib)),
]


@pytest.fixture(scope="module")
def small_v4():
    fib = synthesize_as65000(scale=0.01)
    return fib, mixed_addresses(fib, N_ADDRESSES, seed=21)


@pytest.fixture(scope="module")
def small_v6():
    fib = synthesize_as131072(scale=0.05)
    return fib, mixed_addresses(fib, N_ADDRESSES, seed=22)


def run_lookups(lookup, addresses):
    total = 0
    for address in addresses:
        if lookup(address) is not None:
            total += 1
    return total


def _sweep(fib, addresses, makers):
    """(hits, rates): per-scheme hit counts and native lookups/sec."""
    hits = {}
    rates = {}
    for name, maker in makers:
        algo = maker(fib)
        start = time.perf_counter()
        hits[name] = run_lookups(algo.lookup, addresses)
        rates[name] = len(addresses) / (time.perf_counter() - start)
    start = time.perf_counter()
    hits["trie"] = run_lookups(fib.lookup, addresses)
    rates["trie"] = len(addresses) / (time.perf_counter() - start)
    return hits, rates


def _emit_sweep(name, title, hits, rates, benchmark):
    table = Table(title, ["Scheme", "Lookups/s", "Hits"])
    for scheme, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        table.add_row(scheme, f"{rate:,.0f}", str(hits[scheme]))
    emit(name, table.render(),
         values={"addresses": N_ADDRESSES, "hits": hits},
         timings={"lookups_per_s": rates,
                  "benchmark": bench_timings(benchmark)})


def test_ipv4_lookup_throughput(benchmark, small_v4):
    fib, addresses = small_v4
    result = benchmark.pedantic(
        lambda: _sweep(fib, addresses, V4_MAKERS), rounds=1, iterations=1)
    hits, rates = result
    _emit_sweep("throughput_ipv4",
                f"IPv4 native lookup throughput ({N_ADDRESSES} addresses)",
                hits, rates, benchmark)
    # Every simulator answers the same workload identically.
    assert all(h == hits["trie"] for h in hits.values())
    assert hits["trie"] > 0


def test_ipv6_lookup_throughput(benchmark, small_v6):
    fib, addresses = small_v6
    result = benchmark.pedantic(
        lambda: _sweep(fib, addresses, V6_MAKERS), rounds=1, iterations=1)
    hits, rates = result
    _emit_sweep("throughput_ipv6",
                f"IPv6 native lookup throughput ({N_ADDRESSES} addresses)",
                hits, rates, benchmark)
    assert all(h == hits["trie"] for h in hits.values())
    assert hits["trie"] > 0


def test_engine_vs_interpreter_throughput(benchmark, small_v4):
    """The engine acceptance gate: compiled plan >= 3x the per-packet
    CRAM interpreter on the same FIB, recorded in a JSON sidecar."""
    fib, addresses = small_v4
    algo = Resail(fib, min_bmp=13)
    plan = compile_plan(algo)
    skewed = skewed_addresses(fib, N_ADDRESSES, seed=23)

    def run():
        # Per-packet interpreter dispatch: the pre-engine serving path.
        start = time.perf_counter()
        for address in addresses[:N_INTERP]:
            algo.cram_lookup(address)
        interp_rate = N_INTERP / (time.perf_counter() - start)
        # Compiled plan, batched.
        out = plan.lookup_batch(addresses)  # warm
        rounds = 3
        start = time.perf_counter()
        for _ in range(rounds):
            out = plan.lookup_batch(addresses, out=[])
        plan_rate = rounds * len(addresses) / (time.perf_counter() - start)
        # Engine with the skew-aware cache on a Zipf workload.
        engine = BatchEngine(algo, cache_size=1024, name="bench")
        engine.lookup_batch(skewed)  # warm the cache with real traffic
        start = time.perf_counter()
        served = engine.lookup_batch(skewed)
        engine_rate = len(skewed) / (time.perf_counter() - start)
        checksum = sum(hop for hop in out if hop is not None)
        # A cache hit must answer exactly like the compiled plan.
        assert served == [plan.lookup(a) for a in skewed]
        return interp_rate, plan_rate, engine_rate, checksum, engine

    interp_rate, plan_rate, engine_rate, checksum, engine = benchmark.pedantic(
        run, rounds=1, iterations=1)
    speedup = plan_rate / interp_rate
    cache = engine.cache.stats

    table = Table("Batched engine vs per-packet interpreter",
                  ["Serving path", "Lookups/s", "vs interpreter"])
    table.add_row("CRAM interpreter (per packet)", f"{interp_rate:,.0f}", "1.0x")
    table.add_row("compiled plan (batched)", f"{plan_rate:,.0f}",
                  f"{speedup:.1f}x")
    table.add_row("engine + FIB cache (skewed)", f"{engine_rate:,.0f}",
                  f"{engine_rate / interp_rate:.1f}x")
    emit("throughput_engine", table.render(),
         values={
             "addresses": len(addresses),
             "interpreter_addresses": N_INTERP,
             "plan_hop_checksum": checksum,
             "plan_steps": len(plan),
             "speedup_threshold_x": 3.0,
             "cache": {"hits": cache.hits, "misses": cache.misses,
                       "hit_ratio": round(engine.cache_hit_ratio(), 4)},
         },
         timings={
             "interpreter_lookups_per_s": interp_rate,
             "plan_lookups_per_s": plan_rate,
             "engine_cached_lookups_per_s": engine_rate,
             "speedup_x": speedup,
             "benchmark": bench_timings(benchmark),
         })

    # Correctness before speed: the plan answers like the trie oracle.
    sample = addresses[:: max(1, len(addresses) // 64)]
    assert [plan.lookup(a) for a in sample] == [fib.lookup(a) for a in sample]
    # The acceptance criterion: >= 3x the per-packet interpreter.
    assert speedup >= 3.0, f"plan only {speedup:.2f}x over the interpreter"


def test_vector_vs_plan_throughput(benchmark, small_v4):
    """The lane-compiler acceptance gate: the vector plan serves >= 3x
    the scalar compiled plan on every fully-lowered scheme, with
    identical answers, recorded in a JSON sidecar."""
    fib, addresses = small_v4
    gated = [
        ("sail", Sail(fib)),
        ("resail", Resail(fib, min_bmp=13)),
        ("dxr", Dxr(fib, k=16)),
    ]

    def run():
        rows = {}
        for name, algo in gated:
            plan = compile_plan(algo)
            vplan = compile_vector_plan(algo, plan=plan)
            assert vplan.fully_lowered, vplan.describe()
            expected = plan.lookup_batch(addresses)  # warm + reference
            got = vplan.lookup_batch_hops(addresses)  # warm
            assert got == expected, f"{name}: vector answers diverge"
            rounds = 3
            start = time.perf_counter()
            for _ in range(rounds):
                plan.lookup_batch(addresses, out=[])
            plan_rate = rounds * len(addresses) / (time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(rounds):
                vplan.lookup_batch(addresses)
            vector_rate = rounds * len(addresses) / (
                time.perf_counter() - start)
            rows[name] = (plan_rate, vector_rate,
                          sum(hop for hop in expected if hop is not None))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = {name: vector / plan
                for name, (plan, vector, _checksum) in rows.items()}

    table = Table("Vector lane kernels vs scalar compiled plan",
                  ["Scheme", "Plan lookups/s", "Vector lookups/s", "Speedup"])
    for name, (plan_rate, vector_rate, _checksum) in rows.items():
        table.add_row(name, f"{plan_rate:,.0f}", f"{vector_rate:,.0f}",
                      f"{speedups[name]:.1f}x")
    emit("throughput_vector", table.render(),
         values={
             "addresses": len(addresses),
             "speedup_threshold_x": 3.0,
             "hop_checksums": {name: checksum
                               for name, (_p, _v, checksum) in rows.items()},
         },
         timings={
             "plan_lookups_per_s": {name: p for name, (p, _v, _c)
                                    in rows.items()},
             "vector_lookups_per_s": {name: v for name, (_p, v, _c)
                                      in rows.items()},
             "speedup_x": speedups,
             "benchmark": bench_timings(benchmark),
         })

    for name, speedup in speedups.items():
        assert speedup >= 3.0, \
            f"{name}: vector only {speedup:.2f}x over the scalar plan"
