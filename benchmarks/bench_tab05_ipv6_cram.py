"""Table 5: CRAM metrics for IPv6 (AS131072-like database).

Paper values: MASHUP(20-12-16-16) 0.32 MB TCAM / 0.77 MB SRAM / 4
steps; BSIC(k=24) 0.02 MB / 3.18 MB / 14.
"""

import pytest

from _bench_utils import emit

from repro.analysis import cram_metrics_table, select_best
from repro.core import MB


def test_tab05_ipv6_cram_metrics(benchmark, bsic_v6, mashup_v6, full_scale):
    rows = benchmark.pedantic(
        lambda: [(a.name, a.cram_metrics()) for a in (mashup_v6, bsic_v6)],
        rounds=1, iterations=1,
    )
    emit("tab05_ipv6_cram",
         cram_metrics_table("Table 5: CRAM metrics, IPv6 (AS131072)", rows).render())

    metrics = dict(rows)
    mashup = metrics[mashup_v6.name]
    bsic = metrics[bsic_v6.name]

    assert mashup.steps == 4

    if full_scale:
        # BSIC: ~0.02 MB TCAM (7k slices x 24b), ~3-4 MB SRAM, 13-16 steps.
        assert bsic.tcam_bits == pytest.approx(0.02 * MB, rel=0.35)
        assert bsic.sram_bits == pytest.approx(3.18 * MB, rel=0.35)
        assert 13 <= bsic.steps <= 16
        # §6.4 orderings: MASHUP needs far more TCAM; BSIC more SRAM/steps.
        assert mashup.tcam_bits > 10 * bsic.tcam_bits
        assert bsic.sram_bits > 2 * mashup.sram_bits
        assert bsic.steps > 2 * mashup.steps

        # The §6.4 selection rule picks BSIC for IPv6 (TCAM priority).
        winner, _ = select_best(rows)
        assert winner == bsic_v6.name
