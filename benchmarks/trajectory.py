"""Benchmark trajectory tracker — runnable wrapper.

Appends the current crop of ``benchmarks/results/*.json`` sidecars to
the versioned ``BENCH_history.jsonl`` and prints the regression report
(the logic lives in :mod:`repro.obs.trajectory`; ``repro
bench-history`` is the same entry point with more flags)::

    PYTHONPATH=src python benchmarks/trajectory.py [--check] [--strict]

CI runs this (via ``repro bench-history --check``) after the bench
smokes as a *soft* gate: a >10% throughput drop or p99 inflation vs
the previous recorded run lands a warning in the job log without
failing the build; ``--strict`` turns warnings into exit 1.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench-history", *sys.argv[1:]]))
