"""Table 9: IPv6 baseline comparison on chip models.

Paper rows: BSIC on Tofino-2 15/416/30 (fits via recirculation) and on
ideal RMT 15/211/14; HI-BST (ideal) -/219/18; logical TCAM (ideal)
762/-/32 (infeasible; capacity 122,880 entries).
"""

from _bench_utils import emit

from repro.algorithms import logical_tcam_capacity
from repro.analysis import chip_mapping_table
from repro.chip import TOFINO2, map_to_ideal_rmt, map_to_tofino2


def test_tab09_ipv6_baselines(benchmark, bsic_v6, hibst_v6, ltcam_v6,
                              fib_v6, full_scale):
    def build():
        return {
            "bsic_tofino": map_to_tofino2(bsic_v6.layout()),
            "bsic_ideal": map_to_ideal_rmt(bsic_v6.layout()),
            "hibst_ideal": map_to_ideal_rmt(hibst_v6.layout()),
            "ltcam_ideal": map_to_ideal_rmt(ltcam_v6.layout()),
        }

    m = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("tab09_ipv6_baselines", chip_mapping_table(
        "Table 9: baseline comparison, IPv6 (AS131072)",
        [
            (bsic_v6.name, m["bsic_tofino"]),
            (bsic_v6.name, m["bsic_ideal"]),
            ("HI-BST", m["hibst_ideal"]),
            ("Logical TCAM", m["ltcam_ideal"]),
            ("Tofino-2 Pipe Limit", TOFINO2.tcam_blocks, TOFINO2.sram_pages,
             str(TOFINO2.stages), "-"),
        ],
    ).render())

    if full_scale:
        # BSIC fits Tofino-2 only by recirculating (§6.5.3).
        assert m["bsic_tofino"].feasible
        assert m["bsic_tofino"].recirculated
        assert m["bsic_tofino"].stages > TOFINO2.stages
        assert m["bsic_ideal"].feasible
        # BSIC uses less SRAM and fewer stages than HI-BST, at a small
        # TCAM cost (paper: 15 blocks).
        assert m["bsic_ideal"].sram_pages <= m["hibst_ideal"].sram_pages * 1.1
        assert m["bsic_ideal"].stages < m["hibst_ideal"].stages
        assert 10 <= m["bsic_ideal"].tcam_blocks <= 25
        assert m["hibst_ideal"].tcam_blocks == 0
        # HI-BST fits today's table; the logical TCAM does not.
        assert m["hibst_ideal"].feasible
        assert not m["ltcam_ideal"].feasible
        assert 28 <= m["ltcam_ideal"].stages <= 36
        assert logical_tcam_capacity(64) == 122_880 < len(fib_v6)
