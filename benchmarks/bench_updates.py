"""Extension experiment: incremental update cost (Appendix A.3).

The paper ranks update friendliness qualitatively: RESAIL and MASHUP
update in place; BSIC must rebuild from an auxiliary database.  Two
benches check that ranking:

* ``test_update_costs`` replays one BGP-like churn trace (from the
  shared :mod:`repro.control.churn` generator — announcements,
  withdrawals, next-hop modifies, flap storms) against the raw
  structures and times each scheme.
* ``test_managed_churn_fault_ranking`` drives the same schemes through
  the managed runtime with every fault injector armed, and checks the
  rebuild-fallback ranking: the in-place schemes absorb the churn
  without planned rebuilds, while BSIC's rebuild discipline costs one
  reconstruction per batch — and nobody ever diverges from the oracle.
"""

import time

from _bench_utils import bench_timings, emit

from repro.algorithms import Bsic, Mashup, Resail
from repro.analysis import Table
from repro.control import (
    ALL_FAULTS,
    ANNOUNCE,
    CALM,
    ChurnGenerator,
    FaultPlan,
    Health,
    ManagedFib,
    churn_trace,
)
from repro.datasets import synthesize_as65000, uniform_addresses
from repro.prefix import Fib

CHURN = 60


def test_update_costs(benchmark):
    base = synthesize_as65000(scale=0.002)
    oracle = Fib(32, list(base))
    algos = {
        "RESAIL": Resail(oracle, min_bmp=13, hash_capacity=1 << 16),
        "MASHUP": Mashup(oracle, (16, 4, 4, 8)),
        "BSIC": Bsic(oracle, k=16),
    }
    # The ops are valid by construction (withdrawals name live routes),
    # so they can be applied directly to the raw structures.
    trace = churn_trace(base, CHURN, seed=41, profile=CALM)
    probes = uniform_addresses(32, 64, seed=42)

    def replay():
        times = {name: 0.0 for name in algos}
        for op in trace:
            prefix = op.resolve()
            for name, algo in algos.items():
                start = time.perf_counter()
                if op.action == ANNOUNCE:
                    algo.insert(prefix, op.next_hop)
                else:
                    algo.delete(prefix)
                times[name] += time.perf_counter() - start
            if op.action == ANNOUNCE:
                oracle.insert(prefix, op.next_hop)
            else:
                oracle.delete(prefix)
            for address in probes:
                want = oracle.lookup(address)
                for name, algo in algos.items():
                    assert algo.lookup(address) == want, (name, op.render())
        return times

    times = benchmark.pedantic(replay, rounds=1, iterations=1)
    table = Table(f"Update cost over {len(trace)} BGP-like changes",
                  ["Scheme", "Total (s)", "Per update (ms)"])
    for name, seconds in sorted(times.items(), key=lambda kv: kv[1]):
        table.add_row(name, f"{seconds:.3f}", f"{seconds / len(trace) * 1e3:.2f}")
    emit("update_costs", table.render(),
         values={"churn_ops": len(trace), "probes": len(probes)},
         timings={"per_scheme_total_s": times,
                  "benchmark": bench_timings(benchmark)})

    # Appendix A.3's ordering: RESAIL cheapest, BSIC costliest.
    assert times["RESAIL"] < times["MASHUP"]
    assert times["MASHUP"] < times["BSIC"] * 1.5  # both rebuild-flavoured here
    assert times["RESAIL"] * 5 < times["BSIC"]


def test_managed_churn_fault_ranking(benchmark):
    """Managed churn with all faults: in-place schemes stay in place,
    BSIC pays a planned rebuild per batch, nobody diverges."""
    base = synthesize_as65000(scale=0.002)
    schemes = [
        ("RESAIL", lambda fib: Resail(fib, min_bmp=13, hash_capacity=1 << 16)),
        ("MASHUP", lambda fib: Mashup(fib, (16, 4, 4, 8))),
        ("BSIC", lambda fib: Bsic(fib, k=16)),
    ]
    ops, batch_size, seed = 400, 25, 17

    def run():
        results = {}
        for name, factory in schemes:
            managed = ManagedFib(
                factory, base,
                faults=FaultPlan.build(sorted(ALL_FAULTS), seed=seed),
                check_seed=seed,
            )
            generator = ChurnGenerator(base, seed=seed)
            for batch in generator.batches(ops, batch_size):
                managed.apply_batch(batch)
            managed.log.check_accounting()
            managed.log.check_registry_consistency()
            results[name] = managed
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(f"Managed churn, {ops} ops + all faults",
                  ["Scheme", "Applied", "Rebuilt", "Rolled back",
                   "Planned/recovery rebuilds", "Health"])
    for name, managed in results.items():
        log = managed.log
        table.add_row(
            name,
            str(log.count("batch_applied")),
            str(log.count("batch_rebuilt")),
            str(log.count("batch_rolled_back")),
            f"{log.count('rebuild_planned')}/{log.count('rebuild_recovery')}",
            str(managed.health),
        )
    emit("update_fault_ranking", table.render(),
         values={
             name: {
                 "applied": managed.log.count("batch_applied"),
                 "rebuilt": managed.log.count("batch_rebuilt"),
                 "rolled_back": managed.log.count("batch_rolled_back"),
                 "rebuild_planned": managed.log.count("rebuild_planned"),
                 "rebuild_recovery": managed.log.count("rebuild_recovery"),
                 "health": str(managed.health),
                 "metrics": managed.registry.snapshot(),
             }
             for name, managed in results.items()
         },
         timings={
             "benchmark": bench_timings(benchmark),
             "per_scheme": {
                 name: managed.registry.timings_snapshot()
                 for name, managed in results.items()
             },
         })

    for name, managed in results.items():
        assert managed.log.count("violation") == 0, name
        assert managed.health is not Health.FAILED, name

    # The paper's update disciplines, observable in the event logs:
    # in-place schemes never take a *planned* rebuild, while BSIC's
    # rebuild discipline reconstructs once per batch.
    for name in ("RESAIL", "MASHUP"):
        assert results[name].log.count("rebuild_planned") == 0, name
        assert results[name].log.count("batch_applied") > 0, name
    bsic_log = results["BSIC"].log
    assert bsic_log.count("rebuild_planned") == bsic_log.batches_total
    assert bsic_log.count("batch_applied") == 0
