"""Extension experiment: incremental update cost (Appendix A.3).

The paper ranks update friendliness qualitatively: RESAIL and MASHUP
update in place; BSIC must rebuild from an auxiliary database.  Two
benches check that ranking:

* ``test_update_costs`` replays one BGP-like churn trace (from the
  shared :mod:`repro.control.churn` generator — announcements,
  withdrawals, next-hop modifies, flap storms) against the raw
  structures and times each scheme.
* ``test_managed_churn_fault_ranking`` drives the same schemes through
  the managed runtime with every fault injector armed, and checks the
  rebuild-fallback ranking: the in-place schemes absorb the churn
  without planned rebuilds, while BSIC's rebuild discipline costs one
  reconstruction per batch — and nobody ever diverges from the oracle.
* ``test_churn_under_serving`` is the incremental-commit gate: the
  same churn committed through the delta path (in-place
  ``apply_delta`` + plan patching) must beat the legacy
  copy-and-recompile path by at least 5x per commit, while a batch
  engine keeps serving lookups between batches.
"""

import os
import time

from _bench_utils import bench_timings, emit

from repro.algorithms import Bsic, Mashup, Resail
from repro.analysis import Table
from repro.control import (
    ALL_FAULTS,
    ANNOUNCE,
    CALM,
    ChurnGenerator,
    FaultPlan,
    Health,
    ManagedFib,
    churn_trace,
)
from repro.control import RuntimePolicy
from repro.datasets import synthesize_as65000, uniform_addresses
from repro.engine import BatchEngine
from repro.prefix import Fib

CHURN = 60
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def test_update_costs(benchmark):
    base = synthesize_as65000(scale=0.002)
    oracle = Fib(32, list(base))
    algos = {
        "RESAIL": Resail(oracle, min_bmp=13, hash_capacity=1 << 16),
        "MASHUP": Mashup(oracle, (16, 4, 4, 8)),
        "BSIC": Bsic(oracle, k=16),
    }
    # The ops are valid by construction (withdrawals name live routes),
    # so they can be applied directly to the raw structures.
    trace = churn_trace(base, CHURN, seed=41, profile=CALM)
    probes = uniform_addresses(32, 64, seed=42)

    def replay():
        times = {name: 0.0 for name in algos}
        for op in trace:
            prefix = op.resolve()
            for name, algo in algos.items():
                start = time.perf_counter()
                if op.action == ANNOUNCE:
                    algo.insert(prefix, op.next_hop)
                else:
                    algo.delete(prefix)
                times[name] += time.perf_counter() - start
            if op.action == ANNOUNCE:
                oracle.insert(prefix, op.next_hop)
            else:
                oracle.delete(prefix)
            for address in probes:
                want = oracle.lookup(address)
                for name, algo in algos.items():
                    assert algo.lookup(address) == want, (name, op.render())
        return times

    times = benchmark.pedantic(replay, rounds=1, iterations=1)
    table = Table(f"Update cost over {len(trace)} BGP-like changes",
                  ["Scheme", "Total (s)", "Per update (ms)"])
    for name, seconds in sorted(times.items(), key=lambda kv: kv[1]):
        table.add_row(name, f"{seconds:.3f}", f"{seconds / len(trace) * 1e3:.2f}")
    emit("update_costs", table.render(),
         values={"churn_ops": len(trace), "probes": len(probes)},
         timings={"per_scheme_total_s": times,
                  "benchmark": bench_timings(benchmark)})

    # Appendix A.3's ordering: RESAIL cheapest, BSIC costliest.
    assert times["RESAIL"] < times["MASHUP"]
    assert times["MASHUP"] < times["BSIC"] * 1.5  # both rebuild-flavoured here
    assert times["RESAIL"] * 5 < times["BSIC"]


def test_managed_churn_fault_ranking(benchmark):
    """Managed churn with all faults: in-place schemes stay in place,
    BSIC pays a planned rebuild per batch, nobody diverges."""
    base = synthesize_as65000(scale=0.002)
    schemes = [
        ("RESAIL", lambda fib: Resail(fib, min_bmp=13, hash_capacity=1 << 16)),
        ("MASHUP", lambda fib: Mashup(fib, (16, 4, 4, 8))),
        ("BSIC", lambda fib: Bsic(fib, k=16)),
    ]
    ops, batch_size, seed = 400, 25, 17

    def run():
        results = {}
        for name, factory in schemes:
            managed = ManagedFib(
                factory, base,
                faults=FaultPlan.build(sorted(ALL_FAULTS), seed=seed),
                check_seed=seed,
            )
            generator = ChurnGenerator(base, seed=seed)
            for batch in generator.batches(ops, batch_size):
                managed.apply_batch(batch)
            managed.log.check_accounting()
            managed.log.check_registry_consistency()
            results[name] = managed
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(f"Managed churn, {ops} ops + all faults",
                  ["Scheme", "Applied", "Rebuilt", "Rolled back",
                   "Planned/recovery rebuilds", "Health"])
    for name, managed in results.items():
        log = managed.log
        table.add_row(
            name,
            str(log.count("batch_applied")),
            str(log.count("batch_rebuilt")),
            str(log.count("batch_rolled_back")),
            f"{log.count('rebuild_planned')}/{log.count('rebuild_recovery')}",
            str(managed.health),
        )
    emit("update_fault_ranking", table.render(),
         values={
             name: {
                 "applied": managed.log.count("batch_applied"),
                 "rebuilt": managed.log.count("batch_rebuilt"),
                 "rolled_back": managed.log.count("batch_rolled_back"),
                 "rebuild_planned": managed.log.count("rebuild_planned"),
                 "rebuild_recovery": managed.log.count("rebuild_recovery"),
                 "health": str(managed.health),
                 "metrics": managed.registry.snapshot(),
             }
             for name, managed in results.items()
         },
         timings={
             "benchmark": bench_timings(benchmark),
             "per_scheme": {
                 name: managed.registry.timings_snapshot()
                 for name, managed in results.items()
             },
         })

    for name, managed in results.items():
        assert managed.log.count("violation") == 0, name
        assert managed.health is not Health.FAILED, name

    # The paper's update disciplines, observable in the event logs:
    # in-place schemes never take a *planned* rebuild, while BSIC's
    # rebuild discipline reconstructs once per batch.
    for name in ("RESAIL", "MASHUP"):
        assert results[name].log.count("rebuild_planned") == 0, name
        assert results[name].log.count("batch_applied") > 0, name
    bsic_log = results["BSIC"].log
    assert bsic_log.count("rebuild_planned") == bsic_log.batches_total
    assert bsic_log.count("batch_applied") == 0


def test_churn_under_serving(benchmark):
    """Sustained churn under serving: delta commits vs full recompiles.

    Both legs replay the identical CALM trace through a ManagedFib
    with a batch engine subscribed to its commits, serving a probe
    burst after every batch.  The *delta* leg runs the incremental
    pipeline end to end (in-place ``apply_delta``, plan/vector
    patching); the *recompile* leg forces the legacy discipline
    (``delta_updates=False`` snapshots a copy per batch,
    ``patch_threshold=0`` recompiles the full plan per commit).  The
    CI gate: delta commits land at least 5x faster.
    """
    fib_scale = max(0.002, 0.02 * SCALE)
    base = synthesize_as65000(scale=fib_scale)
    probes = uniform_addresses(32, 256, seed=23)
    batches, batch_size, seed = 12, 25, 23
    # Checks and guards cost the same in both legs and would only
    # dilute the commit-path comparison; the engine-vs-oracle probe
    # sweep below keeps the correctness net.
    legs = {
        "delta": (RuntimePolicy(check_every=0, guard_every=0), 256),
        "recompile": (RuntimePolicy(check_every=0, guard_every=0,
                                    delta_updates=False), 0),
    }

    def run():
        results = {}
        for leg, (policy, threshold) in legs.items():
            managed = ManagedFib(
                lambda fib: Resail(fib, min_bmp=13, hash_capacity=1 << 16),
                base, policy=policy, check_seed=seed,
            )
            engine = BatchEngine.over_managed(
                managed, backend="auto", patch_threshold=threshold,
                name=f"churn-{leg}")
            commit_s, serve_s = [], []
            generator = ChurnGenerator(base, seed=seed, profile=CALM)
            for batch in generator.batches(batches * batch_size, batch_size):
                start = time.perf_counter()
                outcome = managed.apply_batch(batch)
                commit_s.append(time.perf_counter() - start)
                assert outcome in ("batch_applied", "batch_rebuilt"), outcome
                start = time.perf_counter()
                answers = engine.lookup_batch(probes)
                serve_s.append(time.perf_counter() - start)
                want = [managed.oracle.lookup(a) for a in probes]
                assert answers == want, leg
            managed.log.check_accounting()
            results[leg] = (managed, engine, commit_s, serve_s)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    totals = {leg: sum(commit_s)
              for leg, (_, _, commit_s, _) in results.items()}
    p99 = {leg: sorted(serve_s)[int(0.99 * (len(serve_s) - 1))]
           for leg, (_, _, _, serve_s) in results.items()}
    speedup = totals["recompile"] / totals["delta"]
    def counter(managed, name, leg):
        series = managed.registry.snapshot()["counters"].get(name, {})
        return series.get(f'{{engine="churn-{leg}"}}', 0)

    counters = {
        leg: {
            "plan_patches": counter(
                managed, "repro_engine_plan_patches_total", leg),
            "recompiles": counter(
                managed, "repro_engine_plan_recompiles_total", leg),
            "applied": managed.log.count("batch_applied"),
            "rebuilt": managed.log.count("batch_rebuilt"),
        }
        for leg, (managed, _, _, _) in results.items()
    }

    table = Table(
        f"Churn under serving, {batches}x{batch_size} CALM ops over "
        f"{len(base)} routes",
        ["Leg", "Commit total (s)", "Per batch (ms)", "Patches/recompiles",
         "Serve p99 (us)"])
    for leg in ("delta", "recompile"):
        table.add_row(
            leg, f"{totals[leg]:.4f}",
            f"{totals[leg] / batches * 1e3:.2f}",
            f"{counters[leg]['plan_patches']}/{counters[leg]['recompiles']}",
            f"{p99[leg] * 1e6:.0f}")
    table.add_row("speedup", f"{speedup:.1f}x", "", "", "")

    emit("update_churn_serving", table.render(),
         values={"fib_routes": len(base), "batches": batches,
                 "batch_size": batch_size, "probes": len(probes),
                 "speedup_threshold_x": 5.0, "legs": counters},
         timings={"commit_total_s": totals,
                  "commit_per_batch_ms": {
                      leg: totals[leg] / batches * 1e3 for leg in totals},
                  "serve_p99_us": {
                      leg: p99[leg] * 1e6 for leg in p99},
                  "speedup_x": speedup,
                  "benchmark": bench_timings(benchmark)})

    # The delta leg really took the incremental path...
    assert counters["delta"]["applied"] == batches
    assert counters["delta"]["plan_patches"] == batches
    # ...the recompile leg really recompiled every commit...
    assert counters["recompile"]["plan_patches"] == 0
    assert counters["recompile"]["recompiles"] >= batches
    # ...and the gate: incremental commits are at least 5x cheaper.
    assert speedup >= 5.0, speedup
