"""Extension experiment: incremental update cost (Appendix A.3).

The paper ranks update friendliness qualitatively: RESAIL and MASHUP
update in place; BSIC must rebuild from an auxiliary database.  This
bench measures the behavioural simulators under a BGP-like churn trace
and checks that ranking — plus correctness after every change.
"""

import random
import time

from _bench_utils import emit

from repro.algorithms import Bsic, Mashup, Resail
from repro.analysis import Table
from repro.datasets import synthesize_as65000, uniform_addresses
from repro.prefix import Fib, Prefix

CHURN = 60


def churn_trace(seed: int):
    rng = random.Random(seed)
    inserted = []
    trace = []
    for _ in range(CHURN):
        if inserted and rng.random() < 0.4:
            trace.append(("delete", inserted.pop(rng.randrange(len(inserted))), 0))
        else:
            length = rng.choice([16, 20, 24, 24, 24, 28, 32])
            prefix = Prefix.from_bits(rng.getrandbits(length), length, 32)
            inserted.append(prefix)
            trace.append(("insert", prefix, rng.randrange(256)))
    # Deduplicate repeated inserts of the same prefix.
    seen = set()
    cleaned = []
    live = set()
    for op, prefix, hop in trace:
        if op == "insert":
            if prefix in live:
                continue
            live.add(prefix)
        else:
            if prefix not in live:
                continue
            live.discard(prefix)
        cleaned.append((op, prefix, hop))
    return cleaned


def test_update_costs(benchmark):
    base = synthesize_as65000(scale=0.002)
    oracle = Fib(32, list(base))
    algos = {
        "RESAIL": Resail(oracle, min_bmp=13, hash_capacity=1 << 16),
        "MASHUP": Mashup(oracle, (16, 4, 4, 8)),
        "BSIC": Bsic(oracle, k=16),
    }
    trace = churn_trace(41)
    probes = uniform_addresses(32, 64, seed=42)

    def replay():
        times = {name: 0.0 for name in algos}
        for op, prefix, hop in trace:
            for name, algo in algos.items():
                start = time.perf_counter()
                if op == "insert":
                    algo.insert(prefix, hop)
                else:
                    algo.delete(prefix)
                times[name] += time.perf_counter() - start
            if op == "insert":
                oracle.insert(prefix, hop)
            else:
                oracle.delete(prefix)
            for address in probes:
                want = oracle.lookup(address)
                for name, algo in algos.items():
                    assert algo.lookup(address) == want, (name, op, prefix)
        return times

    times = benchmark.pedantic(replay, rounds=1, iterations=1)
    table = Table(f"Update cost over {len(trace)} BGP-like changes",
                  ["Scheme", "Total (s)", "Per update (ms)"])
    for name, seconds in sorted(times.items(), key=lambda kv: kv[1]):
        table.add_row(name, f"{seconds:.3f}", f"{seconds / len(trace) * 1e3:.2f}")
    emit("update_costs", table.render())

    # Appendix A.3's ordering: RESAIL cheapest, BSIC costliest.
    assert times["RESAIL"] < times["MASHUP"]
    assert times["MASHUP"] < times["BSIC"] * 1.5  # both rebuild-flavoured here
    assert times["RESAIL"] * 5 < times["BSIC"]
