"""Ablations of the design choices DESIGN.md calls out.

Each test isolates one idiom or parameter and quantifies its effect on
the chip mappings:

* RESAIL min_bmp sweep (I7 parallelism vs SRAM, §3.1 item 4);
* d-left provisioning overhead (I3's 25% memory penalty);
* MASHUP hybridization threshold (I1/I2's 3x rule);
* MASHUP coalescing on/off (I5 fragmentation);
* BSIC memory fan-out vs DXR single table vs per-level duplication (I8);
* MASHUP stride choice: spike-guided vs uniform (I4).
"""

from _bench_utils import emit

from repro.algorithms import Dxr, Mashup
from repro.algorithms.resail import resail_layout_from_distribution
from repro.analysis import Table
from repro.chip import map_to_ideal_rmt
from repro.core.units import SRAM_PAGE_BITS, format_bits
from repro.datasets import ipv4_length_distribution
from repro.memory import dleft_cells


def test_ablation_resail_min_bmp(benchmark):
    """More bitmaps = more parallel lookups but less prefix expansion.

    Analytic (length-histogram) sweep, always at full AS65000 scale.
    """
    dist = ipv4_length_distribution(1.0)

    def sweep():
        return {
            mb: map_to_ideal_rmt(resail_layout_from_distribution(dist, mb))
            for mb in (0, 8, 13, 16, 20)
        }

    mappings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table("Ablation: RESAIL min_bmp (ideal RMT)",
                  ["min_bmp", "Parallel bitmap lookups", "SRAM pages", "Stages"])
    for mb, mapping in mappings.items():
        table.add_row(mb, 25 - mb, mapping.sram_pages, mapping.stages)
    emit("ablation_resail_min_bmp", table.render())

    # Expansion kicks in once min_bmp passes the populated lengths.
    assert mappings[20].sram_pages > mappings[13].sram_pages
    # Bitmap memory dominates at the low end: dropping below 13 buys
    # nothing (the paper picks 13 because of P2).
    assert mappings[0].sram_pages >= mappings[13].sram_pages


def test_ablation_dleft_overhead(benchmark):
    """I3: the d-left 25% penalty vs perfect hashing vs 2x chaining."""
    entries = 1_000_000

    def sweep():
        return {ov: dleft_cells(entries, ov) for ov in (0.0, 0.25, 1.0)}

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bits = {ov: c * 33 for ov, c in cells.items()}
    table = Table("Ablation: hash-table provisioning for 1M next hops",
                  ["Overhead", "Cells", "SRAM"])
    for ov, c in cells.items():
        table.add_row(f"{ov:.0%}", c, format_bits(bits[ov]))
    emit("ablation_dleft", table.render())
    assert bits[0.25] == 1.25 * bits[0.0]


def test_ablation_mashup_hybridization(benchmark, fib_v4, full_scale):
    """I1/I2: the 3x rule vs all-SRAM and all-TCAM renderings."""
    def sweep():
        out = {}
        for label, factor in [("all-TCAM (c=0)", 0), ("hybrid (c=3)", 3),
                              ("all-SRAM (c=inf)", 10**9)]:
            mashup = Mashup(fib_v4, (16, 4, 4, 8), area_factor=factor)
            out[label] = map_to_ideal_rmt(mashup.layout())
        return out

    mappings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table("Ablation: MASHUP node hybridization (ideal RMT)",
                  ["Rendering", "TCAM blocks", "SRAM pages"])
    for label, mapping in mappings.items():
        table.add_row(label, mapping.tcam_blocks, mapping.sram_pages)
    emit("ablation_mashup_hybrid", table.render())

    hybrid = mappings["hybrid (c=3)"]
    all_sram = mappings["all-SRAM (c=inf)"]
    all_tcam = mappings["all-TCAM (c=0)"]
    assert hybrid.sram_pages < all_sram.sram_pages
    assert hybrid.tcam_blocks < all_tcam.tcam_blocks
    if full_scale:
        # The hybrid slashes both extremes' dominant resource...
        assert hybrid.sram_pages < 0.75 * all_sram.sram_pages
        assert hybrid.tcam_blocks < 0.25 * all_tcam.tcam_blocks
        # ...and its weighted area (TCAM = 3x SRAM/bit) is never
        # meaningfully worse than the better extreme.
        def area(m):
            return 3 * m.tcam_blocks * 44 * 512 + m.sram_pages * SRAM_PAGE_BITS
        assert area(hybrid) <= 1.1 * min(area(all_sram), area(all_tcam))


def test_ablation_mashup_coalescing(benchmark, fib_v4):
    """I5: tagged super-tables vs one physical table per trie node."""
    def build():
        return {
            "coalesced": map_to_ideal_rmt(Mashup(fib_v4, coalesce=True).layout()),
            "fragmented": map_to_ideal_rmt(Mashup(fib_v4, coalesce=False).layout()),
        }

    mappings = benchmark.pedantic(build, rounds=1, iterations=1)
    table = Table("Ablation: MASHUP table coalescing (ideal RMT)",
                  ["Packing", "TCAM blocks", "SRAM pages"])
    for label, mapping in mappings.items():
        table.add_row(label, mapping.tcam_blocks, mapping.sram_pages)
    emit("ablation_mashup_coalesce", table.render())
    assert (mappings["fragmented"].tcam_blocks
            > 3 * mappings["coalesced"].tcam_blocks)


def test_ablation_bsic_fanout_vs_dxr(benchmark, dxr_v4, bsic_v4):
    """I8: fan-out's memory cost vs the infeasible duplication option.

    Paper §4.1: DXR's single range table 2.97 MB; BSIC's fanned-out BST
    levels 8.64 MB (~2.9x); duplicating the range table per level
    26.73 MB (9x) — which is why fan-out, not duplication, is the
    RMT-legal rendering.
    """
    def build():
        # Range structures only (both schemes share an initial table).
        single = len(dxr_v4.ranges) * (dxr_v4.suffix_bits + 8)
        duplicated = dxr_v4.search_depth * single
        fanout = bsic_v4.forest.total_nodes() * bsic_v4.forest.node_entry_bits
        return single, fanout, duplicated

    single, fanout, duplicated = benchmark.pedantic(build, rounds=1, iterations=1)
    table = Table("Ablation: range-table renderings (IPv4, k=16)",
                  ["Rendering", "SRAM", "Relative"])
    table.add_row("DXR single table (illegal on RMT)", format_bits(single), "1.0x")
    table.add_row("BSIC fan-out (I8)", format_bits(fanout),
                  f"{fanout / single:.1f}x")
    table.add_row("Duplicated per level", format_bits(duplicated),
                  f"{duplicated / single:.1f}x")
    emit("ablation_bsic_fanout", table.render())
    assert single < fanout < duplicated


def test_ablation_mashup_strides(benchmark, fib_v4, full_scale):
    """I4: spike-mirroring strides vs uniform 8-8-8-8."""
    def build():
        return {
            "16-4-4-8 (spike-guided)": map_to_ideal_rmt(
                Mashup(fib_v4, (16, 4, 4, 8)).layout()),
            "8-8-8-8 (uniform)": map_to_ideal_rmt(
                Mashup(fib_v4, (8, 8, 8, 8)).layout()),
        }

    mappings = benchmark.pedantic(build, rounds=1, iterations=1)
    table = Table("Ablation: MASHUP stride choice (ideal RMT)",
                  ["Strides", "TCAM blocks", "SRAM pages"])
    for label, mapping in mappings.items():
        table.add_row(label, mapping.tcam_blocks, mapping.sram_pages)
    emit("ablation_mashup_strides", table.render())

    if full_scale:
        guided = mappings["16-4-4-8 (spike-guided)"]
        uniform = mappings["8-8-8-8 (uniform)"]
        def area(m):
            return 3 * m.tcam_blocks * 44 * 512 + m.sram_pages * SRAM_PAGE_BITS
        assert area(guided) < area(uniform)
