"""Figure 9: RESAIL vs SAIL scaling (IPv4).

Scales the AS65000 length histogram by a constant factor (§7.1) and
maps RESAIL (ideal RMT + Tofino-2) and SAIL (ideal RMT) at each size.
Paper frontiers: RESAIL ideal ~3.8M prefixes, RESAIL Tofino-2 ~2.25M,
SAIL infeasible throughout.
"""

from _bench_utils import emit

from repro.analysis import (
    Table,
    ipv4_max_feasible,
    ipv4_scaling_series,
    render_scaling_figure,
    sail_max_feasible,
)
from repro.chip import map_to_ideal_rmt, map_to_tofino2

SCALES = [0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]


def test_fig09_ipv4_scaling(benchmark):
    series = benchmark.pedantic(
        lambda: ipv4_scaling_series(SCALES), rounds=1, iterations=1
    )
    table = Table(
        "Figure 9: RESAIL vs SAIL scaling (IPv4) - SRAM pages (feasible?)",
        ["DB size", "RESAIL/ideal", "RESAIL/Tofino-2", "SAIL/ideal"],
    )
    for i, scale in enumerate(SCALES):
        def cell(name):
            point = series[name][i]
            return f"{point.sram_pages}{'' if point.feasible else ' (infeasible)'}"

        table.add_row(series["RESAIL / Ideal RMT"][i].size,
                      cell("RESAIL / Ideal RMT"),
                      cell("RESAIL / Tofino-2"),
                      cell("SAIL / Ideal RMT"))

    ideal_max = ipv4_max_feasible(map_to_ideal_rmt)
    tofino_max = ipv4_max_feasible(map_to_tofino2)
    sail_max = sail_max_feasible(map_to_ideal_rmt)
    frontier = (
        f"Max feasible IPv4 database: RESAIL/ideal={ideal_max:,} "
        f"(paper ~3.8M), RESAIL/Tofino-2={tofino_max:,} (paper ~2.25M), "
        f"SAIL/ideal={sail_max:,} (paper: infeasible)"
    )
    chart = render_scaling_figure("Figure 9 (shape): SRAM pages vs size", series)
    emit("fig09_ipv4_scaling", table.render() + "\n" + frontier + "\n\n" + chart)

    # Shape claims (scale-independent: the series is analytic).
    assert sail_max == 0
    assert 3_000_000 <= ideal_max <= 4_600_000
    assert 1_700_000 <= tofino_max <= 2_800_000
    assert tofino_max < ideal_max
    # Curves are monotone in database size.
    for name in series:
        pages = [p.sram_pages for p in series[name]]
        assert pages == sorted(pages)
