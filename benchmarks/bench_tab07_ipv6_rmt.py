"""Table 7: ideal RMT mapping for IPv6 (AS131072-like database).

Paper values: MASHUP 178 blocks / 47 pages / 8 stages; BSIC 15 / 211 /
14.  BSIC's row reproduces almost exactly.
"""

from _bench_utils import emit

from repro.analysis import chip_mapping_table
from repro.chip import map_to_ideal_rmt


def test_tab07_ipv6_ideal_rmt(benchmark, bsic_v6, mashup_v6, full_scale):
    mappings = benchmark.pedantic(
        lambda: [(a.name, map_to_ideal_rmt(a.layout()))
                 for a in (mashup_v6, bsic_v6)],
        rounds=1, iterations=1,
    )
    emit("tab07_ipv6_rmt",
         chip_mapping_table("Table 7: ideal RMT mapping, IPv6 (AS131072)",
                            mappings).render())

    by_name = dict(mappings)
    bsic = by_name[bsic_v6.name]
    mashup = by_name[mashup_v6.name]

    if full_scale:
        # BSIC: paper 15 / 211 / 14; ours lands within a few units.
        assert 12 <= bsic.tcam_blocks <= 22
        assert 190 <= bsic.sram_pages <= 280
        assert 13 <= bsic.stages <= 17
        assert bsic.feasible
        # MASHUP: TCAM-heavy, SRAM-light.
        assert mashup.tcam_blocks > 8 * bsic.tcam_blocks
        assert mashup.sram_pages < bsic.sram_pages / 2
