"""Table 8: IPv4 baseline comparison on chip models.

Paper rows: RESAIL on Tofino-2 17/750/16 and on ideal RMT 2/556/9;
SAIL (ideal) -/2313/33 (infeasible); logical TCAM (ideal) 1822/-/76
(infeasible; capacity 245,760 entries); Tofino-2 pipe limit 480/1600/20.
"""

from _bench_utils import emit

from repro.algorithms import logical_tcam_capacity
from repro.analysis import chip_mapping_table
from repro.chip import TOFINO2, map_to_ideal_rmt, map_to_tofino2


def test_tab08_ipv4_baselines(benchmark, resail_v4, sail_v4, ltcam_v4,
                              fib_v4, full_scale):
    def build():
        return {
            "resail_tofino": map_to_tofino2(resail_v4.layout()),
            "resail_ideal": map_to_ideal_rmt(resail_v4.layout()),
            "sail_ideal": map_to_ideal_rmt(sail_v4.layout()),
            "ltcam_ideal": map_to_ideal_rmt(ltcam_v4.layout()),
        }

    m = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("tab08_ipv4_baselines", chip_mapping_table(
        "Table 8: baseline comparison, IPv4 (AS65000)",
        [
            (resail_v4.name, m["resail_tofino"]),
            (resail_v4.name, m["resail_ideal"]),
            ("SAIL", m["sail_ideal"]),
            ("Logical TCAM", m["ltcam_ideal"]),
            ("Tofino-2 Pipe Limit", TOFINO2.tcam_blocks, TOFINO2.sram_pages,
             str(TOFINO2.stages), "-"),
        ],
    ).render())

    if full_scale:
        # RESAIL fits Tofino-2; SAIL and the logical TCAM do not fit at all.
        assert m["resail_tofino"].feasible
        assert m["resail_ideal"].feasible
        assert not m["sail_ideal"].feasible
        assert not m["ltcam_ideal"].feasible
        # Headline ratios: ~900x fewer TCAM blocks than logical TCAM,
        # ~4x fewer SRAM pages and stages than SAIL.
        assert m["ltcam_ideal"].tcam_blocks > 500 * m["resail_ideal"].tcam_blocks
        assert m["sail_ideal"].sram_pages > 3.5 * m["resail_ideal"].sram_pages
        assert m["sail_ideal"].stages > 3 * m["resail_ideal"].stages
        # Logical TCAM stage count ~76, capacity 245,760 < |AS65000|.
        assert 70 <= m["ltcam_ideal"].stages <= 80
        assert logical_tcam_capacity(32) == 245_760 < len(fib_v4)
