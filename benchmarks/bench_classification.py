"""Extension experiment: packet classification via the CRAM lens (§2.5).

Applies the MASHUP idioms (I4 cutting, I5 coalescing, I1 ternary rows)
to a synthetic 5-tuple ACL and compares against the flat-TCAM
baseline.  Also demonstrates §2.6's caveat: exact-match (SRAM)
expansion of port ranges is astronomically infeasible, so — unlike IP
lookup — classification cannot trade its TCAM away.
"""

from _bench_utils import emit

from repro.analysis import Table
from repro.chip import map_to_ideal_rmt
from repro.classify import (
    Classifier,
    TcamClassifier,
    TreeClassifier,
    classifier_workload,
    synthesize_classifier,
)
from repro.core.units import format_bits

RULES = 1_200


def build_all():
    rules = synthesize_classifier(RULES, seed=31)
    return (Classifier(rules), TcamClassifier(rules),
            TreeClassifier(rules, stride=4, binth=16))


def test_classification_renderings(benchmark):
    oracle, flat, tree = benchmark.pedantic(build_all, rounds=1, iterations=1)

    flat_map = map_to_ideal_rmt(flat.layout())
    tree_map = map_to_ideal_rmt(tree.layout())
    table = Table(f"ACL renderings ({RULES} rules)",
                  ["Rendering", "TCAM rows", "TCAM bits", "Blocks",
                   "Stages", "Notes"])
    table.add_row("Flat TCAM", flat.rows, format_bits(flat.table.tcam_bits()),
                  flat_map.tcam_blocks, flat_map.stages, "one monolithic table")
    table.add_row("Cut tree (I4+I5)", tree.leaf_rows,
                  format_bits(tree.tcam_bits()), tree_map.tcam_blocks,
                  tree_map.stages, f"depth {tree.depth()}, staged")
    table.add_row("SRAM exact expansion", tree.exact_expansion_rows(),
                  None, None, None, "infeasible (§2.6: random ports)")
    emit("classification", table.render())

    # Correctness against the linear-scan oracle.
    packets = classifier_workload(oracle.rules, 500, seed=32)
    for packet in packets:
        want = oracle.classify(packet)
        assert flat.classify(packet) == want
        assert tree.classify(packet) == want

    # Shape claims.
    assert flat.rows == tree.leaf_rows  # port expansion is inherent (I1)
    assert tree.tcam_bits() < flat.table.tcam_bits()  # narrower rows
    assert tree.exact_expansion_rows() > 10**15  # SRAM rendering hopeless
    assert tree_map.stages > flat_map.stages  # staged vs monolithic
