"""Extension experiment: the road not taken — Poptrie vs the CRAM schemes.

§2.3 declines to CRAM-ify compressed tries: "one can directly compress
with TCAM without the extra computational and storage costs of bitmap
compression"; §6.5.1 rejects Poptrie as a baseline because it needs
"too many memory accesses and stages".  With Poptrie implemented, both
judgements become measurements: bitmap compression crushes the
uncompressed multibit trie's SRAM (>3x), but pays a dependent popcount
chain per level, which RMT hardware converts into pipeline stages that
RESAIL (2 steps) never spends — and on value-realistic tables the SRAM
total only matches RESAIL's class, so the stage tax decides.
"""

from _bench_utils import emit

from repro.algorithms import MultibitTrie, Poptrie
from repro.analysis import Table
from repro.chip import map_to_ideal_rmt, map_to_tofino2
from repro.core.units import format_bits


def test_poptrie_vs_cram_schemes(benchmark, fib_v4, resail_v4, mashup_v4,
                                 full_scale):
    poptrie = benchmark.pedantic(lambda: Poptrie(fib_v4, dp_bits=16),
                                 rounds=1, iterations=1)
    # The apples-to-apples uncompressed trie: identical cut geometry
    # (16-bit direct root, then 6-bit strides) without the bitmaps.
    multibit = MultibitTrie(fib_v4, [16, 6, 6, 4])

    rows = []
    for algo in (multibit, poptrie, resail_v4, mashup_v4):
        metrics = algo.cram_metrics()
        ideal = map_to_ideal_rmt(algo.layout())
        tofino = map_to_tofino2(algo.layout())
        rows.append((algo.name, metrics, ideal, tofino))

    table = Table("Poptrie vs CRAM schemes (IPv4)",
                  ["Scheme", "TCAM", "SRAM", "CRAM steps",
                   "Ideal stages", "Tofino-2 stages"])
    for name, metrics, ideal, tofino in rows:
        table.add_row(name, format_bits(metrics.tcam_bits),
                      format_bits(metrics.sram_bits), metrics.steps,
                      ideal.stages, tofino.stages)
    emit("poptrie_comparison", table.render())

    by_name = {name: (m, i, t) for name, m, i, t in rows}
    mb_m, mb_i, mb_t = by_name[multibit.name]
    pt_m, pt_i, pt_t = by_name[poptrie.name]
    re_m, re_i, re_t = by_name[resail_v4.name]
    ma_m, ma_i, ma_t = by_name[mashup_v4.name]

    # What bitmap compression buys: a fraction of the same-geometry
    # uncompressed trie's SRAM, at zero TCAM.
    assert pt_m.tcam_bits == 0
    assert pt_m.sram_bits < mb_m.sram_bits
    if full_scale:
        assert pt_m.sram_bits < mb_m.sram_bits / 3
    # ...and what it costs (§2.3's rationale): a dependent
    # extract/popcount/add chain per level, which RMT hardware turns
    # into stages RESAIL (2 steps) never spends.
    assert pt_m.steps > re_m.steps
    assert pt_t.stages > 2 + 3 * len(poptrie.levels) - 1
    assert pt_t.stages > re_t.stages
    if full_scale:
        # SRAM lands in RESAIL's ballpark (not decisively below it on
        # value-synthetic tables), so the stage tax decides — the
        # paper's §6.5.1 call.
        assert pt_m.sram_bits < 2 * re_m.sram_bits
        # Sanity: correctness at scale on a spot-check.
        from repro.datasets import matching_addresses

        for address in matching_addresses(fib_v4, 50, seed=71):
            assert poptrie.lookup(address) == fib_v4.lookup(address)
