"""Figure 13: BSIC IPv6 latency-memory trade-off on an ideal RMT chip.

Sweeps the initial slice size k.  The plain CRAM model predicts that
larger k reduces steps (shallower BSTs); on the chip, the growing
initial TCAM costs *stages*, so stages are minimized at an interior
optimum — k=24 for AS131072-like tables (Appendix A.6).
"""

from _bench_utils import emit

from repro.analysis import Table, bsic_k_sweep, optimal_k

KS = [16, 20, 24, 28, 32]


def test_fig13_latency_memory_tradeoff(benchmark, fib_v6, full_scale):
    points = benchmark.pedantic(lambda: bsic_k_sweep(fib_v6, KS),
                                rounds=1, iterations=1)
    table = Table(
        "Figure 13: BSIC IPv6 trade-off vs k (ideal RMT)",
        ["k", "CRAM steps", "Stages", "TCAM blocks", "SRAM pages",
         "Initial entries"],
    )
    for p in points:
        table.add_row(p.k, p.cram_steps, p.stages, p.tcam_blocks,
                      p.sram_pages, p.initial_entries)
    best = optimal_k(points)
    emit("fig13_tradeoff", table.render() + f"\nOptimal k: {best} (paper: 24)")

    by_k = {p.k: p for p in points}
    # CRAM steps fall (or hold) as k grows: BSTs get shallower.
    assert by_k[32].cram_steps <= by_k[16].cram_steps
    # But the initial TCAM grows with k...
    assert by_k[32].initial_entries > by_k[16].initial_entries
    assert by_k[32].tcam_blocks > by_k[16].tcam_blocks
    if full_scale:
        # ...so stages bottom out at an interior k (paper: 24).
        assert best in (20, 24, 28)
        assert by_k[best].stages <= by_k[16].stages
        assert by_k[best].stages <= by_k[32].stages
