"""Table 6: ideal RMT mapping for IPv4 (AS65000-like database).

Paper values: MASHUP 235 blocks / 216 pages / 10 stages; BSIC 74 / 558
/ 16; RESAIL 2 / 556 / 9.  RESAIL's row is near-exact; BSIC's is
close; MASHUP's block count depends strongly on how clustered /24
allocations are (see EXPERIMENTS.md).
"""

from _bench_utils import emit

from repro.analysis import chip_mapping_table
from repro.chip import map_to_ideal_rmt


def test_tab06_ipv4_ideal_rmt(benchmark, resail_v4, bsic_v4, mashup_v4,
                              full_scale):
    mappings = benchmark.pedantic(
        lambda: [(a.name, map_to_ideal_rmt(a.layout()))
                 for a in (mashup_v4, bsic_v4, resail_v4)],
        rounds=1, iterations=1,
    )
    emit("tab06_ipv4_rmt",
         chip_mapping_table("Table 6: ideal RMT mapping, IPv4 (AS65000)",
                            mappings).render())

    by_name = dict(mappings)
    resail = by_name[resail_v4.name]
    bsic = by_name[bsic_v4.name]
    mashup = by_name[mashup_v4.name]

    if full_scale:
        # RESAIL: 2 blocks / ~556 pages / 9 stages (paper-exact shape).
        assert resail.tcam_blocks == 2
        assert 520 <= resail.sram_pages <= 590
        assert resail.stages == 9
        assert resail.feasible
        # BSIC: tens of blocks, ~400-600 pages, 13-17 stages.
        assert 30 <= bsic.tcam_blocks <= 120
        assert 380 <= bsic.sram_pages <= 620
        assert 12 <= bsic.stages <= 20
        # MASHUP trades SRAM for TCAM relative to RESAIL.
        assert mashup.tcam_blocks > 100
        assert mashup.sram_pages < resail.sram_pages
